"""The shard worker process: one storage engine behind a framed channel.

Each worker owns a full process-local stack — :class:`Database` (its
own WAL file), :class:`QueueBroker` with its queue tables, a
:class:`MetricsRegistry`, and a 2PC :class:`ParticipantLog` — and
serves a small op vocabulary over the coordinator channel.  Because
everything below the channel is the unmodified single-process code,
every operational guarantee (recoverability, transactional support,
ordering) holds per shard exactly as documented; the shard layer adds
only routing and the cross-shard 2PC protocol on top.

Restart behaviour: opening the worker over an existing WAL path
recovers the engine, re-attaches every ``q_*`` queue table (rebuilding
its READY heap), returns LOCKED messages to READY (their consumer —
the dead previous incarnation — can never ack them), and reports
in-doubt 2PC transactions for the coordinator to resolve.
"""

from __future__ import annotations

import socket
import sys
from typing import Any

from repro.db.database import Database
from repro.errors import ReproError
from repro.faults import (
    SHARD_DECIDE,
    SHARD_PREPARED,
    FaultInjector,
    always,
    exit_process,
    on_hit,
    raise_fault,
)
from repro.queues.broker import QueueBroker
from repro.shard.protocol import (
    consumed_to_wire,
    message_to_wire,
    recv_frame,
    send_frame,
    wire_to_message,
)
from repro.shard.twopc import ABORTED, COMMITTED, ParticipantLog


def build_injector(spec: dict[str, Any] | None) -> FaultInjector | None:
    """Rehydrate a fault injector from a JSON-safe spec (the only form
    that crosses the process boundary).

    Spec keys: ``failpoint`` (name), ``action`` (``"exit"`` or
    ``"raise"``), optional ``on_hit`` (1-based), ``max_fires``,
    ``code`` (exit status), ``seed``.
    """
    if not spec:
        return None
    injector = FaultInjector(seed=int(spec.get("seed", 0)))
    if spec.get("action") == "exit":
        action = exit_process(int(spec.get("code", 3)))
    else:
        action = raise_fault(spec.get("message", "injected shard fault"))
    policy = on_hit(int(spec["on_hit"])) if "on_hit" in spec else always()
    injector.arm(
        spec["failpoint"],
        action,
        policy=policy,
        max_fires=spec.get("max_fires"),
    )
    return injector


class ShardWorker:
    """Request dispatcher around one shard's process-local engine."""

    def __init__(self, config: dict[str, Any]) -> None:
        self.shard_id = int(config["shard_id"])
        self.faults = build_injector(config.get("fault"))
        self.db = Database(
            path=config.get("wal_path"),
            sync_policy=config.get("sync_policy", "commit"),
            group_commit_size=int(config.get("group_commit_size", 1)),
            metrics_enabled=bool(config.get("metrics_enabled", True)),
            faults=self.faults,
        )
        self.broker = QueueBroker(
            self.db, name=f"shard-{self.shard_id}", audit=bool(config.get("audit"))
        )
        self.twopc = ParticipantLog(self.db)
        recovered = 0
        for table in self.db.catalog.tables():
            if table.name.startswith("q_"):
                queue = self.broker.create_queue_or_attach(table.name[2:])
                recovered += queue.recover_locked()
        self.recovered_locked = recovered

    def _fire(self, name: str, **site: Any) -> None:
        if self.faults is not None:
            self.faults.fire(name, shard=self.shard_id, **site)

    # -- op handlers --------------------------------------------------------

    def dispatch(self, op: str, args: dict[str, Any]) -> Any:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise ReproError(f"shard worker: unknown op {op!r}")
        return handler(**args)

    def op_ping(self) -> dict[str, Any]:
        return {
            "shard": self.shard_id,
            "queues": self.broker.queue_names(),
            "recovered_locked": self.recovered_locked,
        }

    def op_create_queue(
        self,
        name: str,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> bool:
        self.broker.create_queue_or_attach(
            name,
            keep_history=keep_history,
            default_expiration=default_expiration,
        )
        return True

    def op_drop_queue(self, name: str) -> bool:
        self.broker.drop_queue(name)
        return True

    def op_publish_batch(
        self, queue: str, messages: list[dict[str, Any]], principal: str = "internal"
    ) -> list[int]:
        return self.broker.publish_batch(
            queue,
            [wire_to_message(wire) for wire in messages],
            principal=principal,
        )

    def op_consume_batch(
        self, queue: str, max_messages: int, principal: str = "consumer"
    ) -> list[dict[str, Any]]:
        messages = self.broker.consume_batch(
            queue, max_messages, principal=principal
        )
        return [consumed_to_wire(message) for message in messages]

    def op_ack(self, queue: str, message_id: int, principal: str = "consumer") -> bool:
        self.broker.ack(queue, message_id, principal=principal)
        return True

    def op_ack_batch(
        self, queue: str, message_ids: list[int], principal: str = "consumer"
    ) -> int:
        return self.broker.ack_batch(queue, message_ids, principal=principal)

    def op_requeue(
        self,
        queue: str,
        message_id: int,
        delay: float = 0.0,
        principal: str = "consumer",
    ) -> bool:
        self.broker.requeue(queue, message_id, delay=delay, principal=principal)
        return True

    def op_depth(self, queue: str) -> int:
        return self.broker.queue(queue).depth()

    def op_stats(self) -> dict[str, dict[str, int]]:
        return self.broker.stats()

    def op_metrics(self) -> dict[str, Any]:
        return self.db.metrics()

    def op_checkpoint(self, truncate: bool = False) -> int:
        return self.db.checkpoint(truncate=truncate)

    # -- 2PC participant ----------------------------------------------------

    def op_prepare(self, gtid: str, ops: list[dict[str, Any]]) -> bool:
        """Phase 1: validate, journal the intent durably, vote YES.

        Any exception (unknown queue, storage failure) becomes a NO
        vote at the coordinator.  The ``shard.prepared`` failpoint
        fires *after* the vote frame is on the wire (see serve_forever)
        — the canonical voted-yes-then-died crash window."""
        for op in ops:
            self.broker.queue(op["queue"])  # raises QueueNotFoundError
        self.twopc.prepare(gtid, ops)
        return True

    def op_decide(self, gtid: str, decision: str) -> bool:
        self._fire(SHARD_DECIDE, gtid=gtid, decision=decision)
        return self.twopc.decide(gtid, decision, self._apply_ops)

    def op_resolve(self, gtid: str, decision: str) -> bool:
        """Recovery-time decision re-send; same idempotent path."""
        return self.twopc.decide(gtid, decision, self._apply_ops)

    def op_list_indoubt(self) -> list[str]:
        return self.twopc.indoubt()

    def op_twopc_state(self, gtid: str) -> str | None:
        return self.twopc.state(gtid)

    def _apply_ops(self, ops: list[dict[str, Any]], conn: Any) -> None:
        for op in ops:
            self.broker.queue(op["queue"]).enqueue(
                wire_to_message(op["message"]), conn=conn
            )

    # -- debugging / test hooks --------------------------------------------

    def op_browse_ids(self, queue: str) -> list[int]:
        return [m.message_id for m in self.broker.queue(queue).browse()]

    def op_wal_flush(self) -> bool:
        self.db.wal.flush()
        return True


def serve_forever(sock: socket.socket, config: dict[str, Any]) -> None:
    """The worker main loop: strictly ordered request/reply frames."""
    worker = ShardWorker(config)
    while True:
        frame = recv_frame(sock)
        if frame is None:  # coordinator closed the channel
            break
        op = frame.get("op", "")
        if op == "shutdown":
            worker.db.wal.flush()
            send_frame(sock, {"id": frame.get("id"), "ok": True, "result": True})
            break
        try:
            result = worker.dispatch(op, frame.get("args") or {})
        except Exception as exc:  # every failure surfaces to the caller
            worker.db.obs.record_error("shard.worker", exc)
            send_frame(
                sock,
                {
                    "id": frame.get("id"),
                    "ok": False,
                    "kind": type(exc).__name__,
                    "error": str(exc),
                },
            )
            continue
        send_frame(sock, {"id": frame.get("id"), "ok": True, "result": result})
        if op == "prepare" and result:
            # Crash window: the YES vote is durable AND on the wire.
            worker._fire(SHARD_PREPARED, gtid=(frame.get("args") or {}).get("gtid"))


def worker_main(sock: socket.socket, config: dict[str, Any]) -> None:
    """Process entry point (target of ``multiprocessing.Process``)."""
    try:
        serve_forever(sock, config)
    except (OSError, EOFError, KeyboardInterrupt):
        pass  # channel torn down — the coordinator owns the verdict
    finally:
        try:
            sock.close()
        except OSError:
            pass
    sys.exit(0)


__all__ = [
    "ShardWorker",
    "worker_main",
    "serve_forever",
    "build_injector",
    "message_to_wire",
]
