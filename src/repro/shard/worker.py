"""The shard worker process: one storage engine behind a framed channel.

Each worker owns a full process-local stack — :class:`Database` (its
own WAL file), :class:`QueueBroker` with its queue tables, a
:class:`MetricsRegistry`, and a 2PC :class:`ParticipantLog` — and
serves a small op vocabulary over the coordinator channel.  Because
everything below the channel is the unmodified single-process code,
every operational guarantee (recoverability, transactional support,
ordering) holds per shard exactly as documented; the shard layer adds
only routing and the cross-shard 2PC protocol on top.

Restart behaviour: opening the worker over an existing WAL path
recovers the engine, re-attaches every ``q_*`` queue table (rebuilding
its READY heap), returns LOCKED messages to READY (their consumer —
the dead previous incarnation — can never ack them), and reports
in-doubt 2PC transactions for the coordinator to resolve.
"""

from __future__ import annotations

import socket
import sys
from typing import Any

from repro.db.database import Database
from repro.errors import ReproError
from repro.faults import (
    SHARD_DECIDE,
    SHARD_HEARTBEAT,
    SHARD_PREPARED,
    SHARD_PROMOTE,
    SHARD_REPLICATE,
    FaultInjector,
    always,
    exit_process,
    on_hit,
    raise_fault,
    stall,
)
from repro.queues.broker import QueueBroker
from repro.queues.message import MessageState
from repro.shard.protocol import (
    consumed_to_wire,
    exported_to_wire,
    message_to_wire,
    recv_frame,
    send_frame,
    wire_to_message,
)
from repro.shard.twopc import ABORTED, COMMITTED, ParticipantLog


def build_injector(spec: dict[str, Any] | None) -> FaultInjector | None:
    """Rehydrate a fault injector from a JSON-safe spec (the only form
    that crosses the process boundary).

    Spec keys: ``failpoint`` (name), ``action`` (``"exit"``,
    ``"raise"``, or ``"sleep"``), optional ``on_hit`` (1-based),
    ``max_fires``, ``code`` (exit status), ``seconds`` (sleep
    duration), ``seed``.
    """
    if not spec:
        return None
    injector = FaultInjector(seed=int(spec.get("seed", 0)))
    if spec.get("action") == "exit":
        action = exit_process(int(spec.get("code", 3)))
    elif spec.get("action") == "sleep":
        action = stall(float(spec.get("seconds", 1.0)))
    else:
        action = raise_fault(spec.get("message", "injected shard fault"))
    policy = on_hit(int(spec["on_hit"])) if "on_hit" in spec else always()
    injector.arm(
        spec["failpoint"],
        action,
        policy=policy,
        max_fires=spec.get("max_fires"),
    )
    return injector


#: Ops a replica refuses while still a replica: anything that would
#: make it a second writer.  Its engine mutates only through
#: ``replicate``/``import_queues`` until ``promote`` flips the role.
_PRIMARY_ONLY_OPS = frozenset(
    {
        "create_queue",
        "drop_queue",
        "publish_batch",
        "consume_batch",
        "ack",
        "ack_batch",
        "requeue",
        "prepare",
        "decide",
        "resolve",
    }
)


class ShardWorker:
    """Request dispatcher around one shard's process-local engine."""

    def __init__(self, config: dict[str, Any]) -> None:
        self.shard_id = int(config["shard_id"])
        self.role = config.get("role", "primary")
        self.faults = build_injector(config.get("fault"))
        self.db = Database(
            path=config.get("wal_path"),
            sync_policy=config.get("sync_policy", "commit"),
            group_commit_size=int(config.get("group_commit_size", 1)),
            metrics_enabled=bool(config.get("metrics_enabled", True)),
            faults=self.faults,
        )
        self.broker = QueueBroker(
            self.db, name=f"shard-{self.shard_id}", audit=bool(config.get("audit"))
        )
        self.twopc = ParticipantLog(self.db)
        recovered = 0
        for table in self.db.catalog.tables():
            if table.name.startswith("q_"):
                queue = self.broker.create_queue_or_attach(table.name[2:])
                recovered += queue.recover_locked()
        self.recovered_locked = recovered
        # Replication cursor and primary-id → local-rowid map, per queue.
        # Both live in memory only: a dead replica is re-seeded from a
        # fresh primary snapshot, never from its own leftover state.
        self.applied_seq = 0
        self._idmap: dict[str, dict[int, int]] = {}

    def _fire(self, name: str, **site: Any) -> None:
        if self.faults is not None:
            self.faults.fire(name, shard=self.shard_id, **site)

    # -- op handlers --------------------------------------------------------

    def dispatch(self, op: str, args: dict[str, Any]) -> Any:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise ReproError(f"shard worker: unknown op {op!r}")
        if self.role == "replica" and op in _PRIMARY_ONLY_OPS:
            raise ReproError(
                f"shard {self.shard_id} replica refuses {op!r} "
                "(not promoted)"
            )
        return handler(**args)

    def op_ping(self) -> dict[str, Any]:
        return {
            "shard": self.shard_id,
            "role": self.role,
            "queues": self.broker.queue_names(),
            "recovered_locked": self.recovered_locked,
        }

    def op_heartbeat(self) -> dict[str, Any]:
        """The supervisor's liveness probe.  The ``shard.heartbeat``
        failpoint fires inside the handler, so an armed ``sleep``
        manifests to the supervisor as a socket timeout (a *stalled*
        worker) and an armed ``exit`` as a dead channel — the two
        failure classes the classifier must tell apart."""
        self._fire(SHARD_HEARTBEAT)
        return {
            "shard": self.shard_id,
            "role": self.role,
            "lsn": self.db.wal.last_lsn,
            "applied_seq": self.applied_seq,
        }

    def op_create_queue(
        self,
        name: str,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> bool:
        self.broker.create_queue_or_attach(
            name,
            keep_history=keep_history,
            default_expiration=default_expiration,
        )
        return True

    def op_drop_queue(self, name: str) -> bool:
        self.broker.drop_queue(name)
        return True

    def op_publish_batch(
        self, queue: str, messages: list[dict[str, Any]], principal: str = "internal"
    ) -> list[int]:
        return self.broker.publish_batch(
            queue,
            [wire_to_message(wire) for wire in messages],
            principal=principal,
        )

    def op_consume_batch(
        self, queue: str, max_messages: int, principal: str = "consumer"
    ) -> list[dict[str, Any]]:
        messages = self.broker.consume_batch(
            queue, max_messages, principal=principal
        )
        return [consumed_to_wire(message) for message in messages]

    def op_ack(self, queue: str, message_id: int, principal: str = "consumer") -> bool:
        self.broker.ack(queue, message_id, principal=principal)
        return True

    def op_ack_batch(
        self, queue: str, message_ids: list[int], principal: str = "consumer"
    ) -> int:
        return self.broker.ack_batch(queue, message_ids, principal=principal)

    def op_requeue(
        self,
        queue: str,
        message_id: int,
        delay: float = 0.0,
        principal: str = "consumer",
    ) -> bool:
        self.broker.requeue(queue, message_id, delay=delay, principal=principal)
        return True

    def op_depth(self, queue: str) -> int:
        return self.broker.queue(queue).depth()

    def op_peek(self, queue: str, max_messages: int = 1) -> list[dict[str, Any]]:
        """READY messages in dequeue order, WITHOUT locking — the
        degraded-mode consume: a replica may serve it (stale) while the
        primary is down, because peeking mutates nothing."""
        out = []
        for message in self.broker.queue(queue).browse():
            out.append(consumed_to_wire(message))
            if len(out) >= max_messages:
                break
        return out

    def op_stats(self) -> dict[str, dict[str, int]]:
        return self.broker.stats()

    def op_metrics(self) -> dict[str, Any]:
        return self.db.metrics()

    def op_checkpoint(self, truncate: bool = False) -> int:
        return self.db.checkpoint(truncate=truncate)

    # -- 2PC participant ----------------------------------------------------

    def op_prepare(self, gtid: str, ops: list[dict[str, Any]]) -> bool:
        """Phase 1: validate, journal the intent durably, vote YES.

        Any exception (unknown queue, storage failure) becomes a NO
        vote at the coordinator.  The ``shard.prepared`` failpoint
        fires *after* the vote frame is on the wire (see serve_forever)
        — the canonical voted-yes-then-died crash window."""
        for op in ops:
            self.broker.queue(op["queue"])  # raises QueueNotFoundError
        self.twopc.prepare(gtid, ops)
        return True

    def op_decide(self, gtid: str, decision: str) -> dict[str, Any]:
        """Phase 2.  Returns whether the decision applied here plus the
        rowids each committed enqueue was assigned — the coordinator
        needs those ids to replicate the commit's effects."""
        self._fire(SHARD_DECIDE, gtid=gtid, decision=decision)
        ids: dict[str, list[int]] = {}
        applied = self.twopc.decide(gtid, decision, self._apply_collecting(ids))
        return {"applied": applied, "ids": ids}

    def op_resolve(self, gtid: str, decision: str) -> dict[str, Any]:
        """Recovery-time decision re-send; same idempotent path."""
        ids: dict[str, list[int]] = {}
        applied = self.twopc.decide(gtid, decision, self._apply_collecting(ids))
        return {"applied": applied, "ids": ids}

    def op_list_indoubt(self) -> list[str]:
        return self.twopc.indoubt()

    def op_twopc_state(self, gtid: str) -> str | None:
        return self.twopc.state(gtid)

    def op_twopc_states(self, gtids: list[str]) -> dict[str, str | None]:
        return self.twopc.states(gtids)

    def _apply_collecting(self, ids: dict[str, list[int]]):
        def apply(ops: list[dict[str, Any]], conn: Any) -> None:
            for op in ops:
                rowid = self.broker.queue(op["queue"]).enqueue(
                    wire_to_message(op["message"]), conn=conn
                )
                ids.setdefault(op["queue"], []).append(rowid)

        return apply

    # -- replication (replica side) ----------------------------------------

    def op_replicate(self, entries: list[dict[str, Any]]) -> dict[str, Any]:
        """Apply a batch of shipped log entries in sequence order.

        Entries at or below the local cursor are skipped, which makes a
        re-shipped batch (a timeout whose reply was lost) harmless.
        The ``shard.replicate`` failpoint fires once per batch, before
        anything applies."""
        self._fire(SHARD_REPLICATE, count=len(entries))
        for entry in sorted(entries, key=lambda e: e["seq"]):
            if entry["seq"] <= self.applied_seq:
                continue
            self._apply_entry(entry)
            self.applied_seq = entry["seq"]
        return {"applied_seq": self.applied_seq}

    def _apply_entry(self, entry: dict[str, Any]) -> None:
        kind = entry["kind"]
        if kind == "create_queue":
            self.broker.create_queue_or_attach(
                entry["name"],
                keep_history=entry.get("keep_history", False),
                default_expiration=entry.get("default_expiration"),
            )
        elif kind == "drop_queue":
            self.broker.drop_queue(entry["name"])
            self._idmap.pop(entry["name"].lower(), None)
        elif kind == "publish":
            queue = self.broker.create_queue_or_attach(entry["queue"])
            idmap = self._idmap.setdefault(entry["queue"].lower(), {})
            primary_ids = entry.get("ids") or []
            for index, wire in enumerate(entry["messages"]):
                rowid = queue.enqueue(wire_to_message(wire))
                if index < len(primary_ids):
                    idmap[primary_ids[index]] = rowid
        elif kind == "ack":
            self._force_consume(entry["queue"], entry["ids"])
        else:
            raise ReproError(f"shard replica: unknown entry kind {kind!r}")

    def _force_consume(self, queue_name: str, primary_ids: list[int]) -> None:
        """Consume replicated acks by primary id, bypassing the LOCKED
        requirement (replica copies are READY — nothing consumes on a
        replica).  Unmapped ids are skipped: the message was acked on
        the primary before this replica's snapshot, so it never existed
        here."""
        queue = self.broker.queue(queue_name)
        idmap = self._idmap.get(queue_name.lower(), {})
        rowids = [
            idmap[primary_id]
            for primary_id in primary_ids
            if primary_id in idmap
        ]
        if not rowids:
            return
        table = self.db.catalog.table(queue.table_name)

        def work(conn: Any) -> None:
            for rowid in rowids:
                if table.get(rowid) is None:
                    continue
                if queue.keep_history:
                    self.db.update_row(
                        queue.table_name,
                        rowid,
                        {"state": MessageState.CONSUMED.value},
                        conn=conn,
                    )
                else:
                    self.db.delete_row(queue.table_name, rowid, conn=conn)

        self.db.run_in_transaction(None, work)
        for primary_id in primary_ids:
            idmap.pop(primary_id, None)

    def op_export_queues(self) -> dict[str, Any]:
        """Snapshot every queue (configs + pending messages, LOCKED
        included) to seed a replica.  LOCKED messages export as plain
        producer fields, so they import READY — the receiving replica
        would redeliver them on promotion, matching ``recover_locked``
        semantics after a primary restart."""
        queues = []
        for name in self.broker.queue_names():
            queue = self.broker.queue(name)
            queues.append(
                {
                    "name": name,
                    "keep_history": queue.keep_history,
                    "default_expiration": queue.default_expiration,
                    "messages": [
                        exported_to_wire(message)
                        for message in queue.browse(include_locked=True)
                    ],
                }
            )
        return {"queues": queues, "lsn": self.db.wal.last_lsn}

    def op_import_queues(
        self, queues: list[dict[str, Any]], applied_seq: int = 0
    ) -> dict[str, Any]:
        """Replace ALL local queue state with a primary snapshot and
        set the replication cursor to the sequence the snapshot
        reflects.  Replace-all (not merge) keeps reseeding after a
        primary restart trivially convergent."""
        for name in self.broker.queue_names():
            self.broker.drop_queue(name)
        self._idmap.clear()
        imported = 0
        for spec in queues:
            queue = self.broker.create_queue_or_attach(
                spec["name"],
                keep_history=spec.get("keep_history", False),
                default_expiration=spec.get("default_expiration"),
            )
            idmap = self._idmap.setdefault(spec["name"].lower(), {})
            for wire in spec["messages"]:
                primary_id = wire.get("primary_id")
                rowid = queue.enqueue(wire_to_message(wire))
                if primary_id is not None:
                    idmap[primary_id] = rowid
                imported += 1
        self.applied_seq = int(applied_seq)
        return {"imported": imported, "applied_seq": self.applied_seq}

    def op_promote(self) -> dict[str, Any]:
        """Flip this replica to primary.  The coordinator has already
        caught it up from the replication log; after the flip it
        accepts the full op vocabulary.  The ``shard.promote``
        failpoint is the canonical died-during-promotion window."""
        self._fire(SHARD_PROMOTE)
        self.role = "primary"
        self.db.wal.flush()
        return {
            "shard": self.shard_id,
            "role": self.role,
            "queues": self.broker.queue_names(),
            "applied_seq": self.applied_seq,
        }

    # -- debugging / test hooks --------------------------------------------

    def op_browse_ids(self, queue: str) -> list[int]:
        return [m.message_id for m in self.broker.queue(queue).browse()]

    def op_wal_flush(self) -> bool:
        self.db.wal.flush()
        return True


def serve_forever(sock: socket.socket, config: dict[str, Any]) -> None:
    """The worker main loop: strictly ordered request/reply frames."""
    worker = ShardWorker(config)
    while True:
        frame = recv_frame(sock)
        if frame is None:  # coordinator closed the channel
            break
        op = frame.get("op", "")
        if op == "shutdown":
            worker.db.wal.flush()
            send_frame(sock, {"id": frame.get("id"), "ok": True, "result": True})
            break
        try:
            result = worker.dispatch(op, frame.get("args") or {})
        except Exception as exc:  # every failure surfaces to the caller
            worker.db.obs.record_error("shard.worker", exc)
            send_frame(
                sock,
                {
                    "id": frame.get("id"),
                    "ok": False,
                    "kind": type(exc).__name__,
                    "error": str(exc),
                },
            )
            continue
        send_frame(
            sock,
            {
                "id": frame.get("id"),
                "ok": True,
                "result": result,
                # WAL position after the op — the coordinator tags
                # replication entries with it (LSN-tagged shipping).
                "lsn": worker.db.wal.last_lsn,
            },
        )
        if op == "prepare" and result:
            # Crash window: the YES vote is durable AND on the wire.
            worker._fire(SHARD_PREPARED, gtid=(frame.get("args") or {}).get("gtid"))


def worker_main(sock: socket.socket, config: dict[str, Any]) -> None:
    """Process entry point (target of ``multiprocessing.Process``)."""
    try:
        serve_forever(sock, config)
    except (OSError, EOFError, KeyboardInterrupt):
        pass  # channel torn down — the coordinator owns the verdict
    finally:
        try:
            sock.close()
        except OSError:
            pass
    sys.exit(0)


__all__ = [
    "ShardWorker",
    "worker_main",
    "serve_forever",
    "build_injector",
    "message_to_wire",
]
