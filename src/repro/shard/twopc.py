"""Two-phase commit records for the rare cross-shard operation.

A queue lives entirely on one shard, so almost every operation is a
single-shard local transaction.  The exception the paper's rule layer
forces: one logical action must enqueue to queues owned by *different*
shards, atomically (e.g. a rule on shard A fanning out to a queue on
shard B).  Those go through coordinator-driven 2PC.

The participant side is **deferred-apply, presumed-abort**:

* **Prepare** — the worker journals an *intent*: one committed local
  transaction inserting ``(gtid, state='prepared', ops)`` into its
  ``shard_2pc`` table.  Nothing is enqueued yet; the intent rides the
  shard's own WAL, so a crashed worker finds its in-doubt transactions
  in recovered table state, not in volatile memory.
* **Commit decision** — ONE local transaction applies every op (the
  enqueues) *and* flips the row to ``state='committed'``.  Local
  atomicity of that transaction gives exactly-once application: either
  the effects and the decision record both survive, or neither does.
* **Abort decision** — flips the row to ``state='aborted'``.
* **Recovery** — rows still ``prepared`` are in-doubt; the coordinator
  resolves each against its own durable decision journal (commit iff a
  commit decision was journaled before the crash — presumed abort
  otherwise) by re-sending the decision, which is idempotent here
  because a resolved row is no longer ``prepared``.

The coordinator side journals decisions in its *own* engine before
sending phase 2 — the classic "decision record is the commit point".
"""

from __future__ import annotations

import json
import uuid
from typing import Any, Callable

from repro.db.engine import StorageEngine
from repro.db.schema import Column
from repro.db.types import TEXT, TIMESTAMP

#: Table (on every shard) holding participant 2PC state.
PARTICIPANT_TABLE = "shard_2pc"
#: Table (on the coordinator engine) holding decisions — the commit point.
DECISION_TABLE = "shard_gtid"

PREPARED = "prepared"
COMMITTED = "committed"
ABORTED = "aborted"


def new_gtid() -> str:
    """A globally unique transaction id (uuid4 hex)."""
    return uuid.uuid4().hex


class ParticipantLog:
    """One shard's durable 2PC state, stored in ``shard_2pc``."""

    def __init__(self, engine: StorageEngine) -> None:
        self.engine = engine
        if not engine.catalog.has_table(PARTICIPANT_TABLE):
            engine.create_table(
                PARTICIPANT_TABLE,
                [
                    Column("gtid", TEXT, nullable=False, unique=True),
                    Column("state", TEXT, nullable=False),
                    Column("ops", TEXT, nullable=False),
                    Column("updated_at", TIMESTAMP, nullable=False),
                ],
            )
            engine.create_index(
                f"ix_{PARTICIPANT_TABLE}_gtid", PARTICIPANT_TABLE, "gtid",
                kind="hash",
            )

    def _rowid(self, gtid: str) -> int | None:
        table = self.engine.catalog.table(PARTICIPANT_TABLE)
        rowids = table.lookup_rowids("gtid", gtid)
        return rowids[0] if rowids else None

    def state(self, gtid: str) -> str | None:
        rowid = self._rowid(gtid)
        if rowid is None:
            return None
        return self.engine.catalog.table(PARTICIPANT_TABLE).get(rowid)["state"]

    def prepare(self, gtid: str, ops: list[dict[str, Any]]) -> None:
        """Journal the intent as one committed transaction (the vote
        becomes durable before it is sent).  Idempotent re-prepare of
        the same gtid is rejected by the unique index."""
        self.engine.insert_row(
            PARTICIPANT_TABLE,
            {
                "gtid": gtid,
                "state": PREPARED,
                "ops": json.dumps(ops),
                "updated_at": self.engine.clock.now(),
            },
        )
        # The vote may be sent only once the intent is ON DISK — group
        # commit must not be allowed to buffer a YES vote.
        self.engine.wal.flush()

    def decide(
        self,
        gtid: str,
        decision: str,
        apply_ops: Callable[[list[dict[str, Any]], Any], Any],
    ) -> bool:
        """Apply ``decision`` to a prepared transaction.

        On commit, ``apply_ops(ops, conn)`` runs in the SAME local
        transaction that flips the state row, so application and the
        journaled decision are atomic.  Returns False (no-op) when the
        gtid is unknown or already resolved — that idempotence is what
        makes recovery re-sends safe.
        """
        if decision not in (COMMITTED, ABORTED):
            raise ValueError(f"unknown 2PC decision {decision!r}")
        rowid = self._rowid(gtid)
        if rowid is None:
            return False
        table = self.engine.catalog.table(PARTICIPANT_TABLE)
        row = table.get(rowid)
        if row["state"] != PREPARED:
            return False

        def work(conn: Any) -> None:
            if decision == COMMITTED:
                apply_ops(json.loads(row["ops"]), conn)
            self.engine.update_row(
                PARTICIPANT_TABLE,
                rowid,
                {"state": decision, "updated_at": self.engine.clock.now()},
                conn=conn,
            )

        self.engine.run_in_transaction(None, work)
        self.engine.wal.flush()
        return True

    def indoubt(self) -> list[str]:
        """gtids journaled ``prepared`` whose outcome this shard never
        learned (the set recovery must resolve)."""
        table = self.engine.catalog.table(PARTICIPANT_TABLE)
        return sorted(
            row["gtid"]
            for _rowid, row in table.scan()
            if row["state"] == PREPARED
        )

    def states(self, gtids: list[str]) -> dict[str, str | None]:
        """Resolution states for a batch of gtids (``None`` = unknown
        here) — the worker-side half of decision-log compaction: a
        decision row is reclaimable only once every participant reports
        its gtid ``committed``/``aborted``."""
        return {gtid: self.state(gtid) for gtid in gtids}


class DecisionLog:
    """The coordinator's durable decision journal (``shard_gtid``).

    Rows also record the *participants* (shard ids) of each
    transaction, which is what makes compaction safe: a decision may be
    deleted only once every participant has durably resolved the gtid
    on its own shard — after that the row can never be consulted again
    (recovery asks only about gtids still ``prepared`` somewhere).
    Rows recovered from a pre-participants journal have no participant
    list and are never compacted.
    """

    def __init__(self, engine: StorageEngine) -> None:
        self.engine = engine
        if not engine.catalog.has_table(DECISION_TABLE):
            engine.create_table(
                DECISION_TABLE,
                [
                    Column("gtid", TEXT, nullable=False, unique=True),
                    Column("decision", TEXT, nullable=False),
                    Column("decided_at", TIMESTAMP, nullable=False),
                    Column("participants", TEXT),
                ],
            )
            engine.create_index(
                f"ix_{DECISION_TABLE}_gtid", DECISION_TABLE, "gtid",
                kind="hash",
            )
        # A journal recovered from before the participants column keeps
        # its 3-column shape; such logs still resolve but never compact.
        self._has_participants = any(
            column.name == "participants"
            for column in engine.catalog.table(DECISION_TABLE).schema.columns
        )

    def record(
        self,
        gtid: str,
        decision: str,
        *,
        participants: list[int] | None = None,
    ) -> None:
        """Journal the decision — THE commit point of the protocol.
        Once this commits, the transaction's fate is ``decision``
        regardless of which processes die afterwards."""
        row: dict[str, Any] = {
            "gtid": gtid,
            "decision": decision,
            "decided_at": self.engine.clock.now(),
        }
        if self._has_participants:
            row["participants"] = (
                json.dumps(sorted(participants))
                if participants is not None
                else None
            )
        self.engine.insert_row(DECISION_TABLE, row)
        self.engine.wal.flush()

    def decision_for(self, gtid: str) -> str | None:
        """The journaled decision, or ``None`` (presumed abort)."""
        table = self.engine.catalog.table(DECISION_TABLE)
        rowids = table.lookup_rowids("gtid", gtid)
        if not rowids:
            return None
        return table.get(rowids[0])["decision"]

    def __len__(self) -> int:
        return sum(1 for _ in self.engine.catalog.table(DECISION_TABLE).scan())

    def rows(self) -> list[dict[str, Any]]:
        """Every decision row, with ``participants`` decoded (or
        ``None`` when unknown/legacy)."""
        out: list[dict[str, Any]] = []
        for rowid, row in self.engine.catalog.table(DECISION_TABLE).scan():
            raw = row.get("participants") if self._has_participants else None
            out.append(
                {
                    "rowid": rowid,
                    "gtid": row["gtid"],
                    "decision": row["decision"],
                    "participants": json.loads(raw) if raw else None,
                }
            )
        return out

    def compact(self, resolved_gtids: set[str]) -> int:
        """Delete decisions whose gtid is in ``resolved_gtids`` — the
        caller certifies every participant has durably resolved them.
        One transaction, flushed; returns the number removed."""
        table = self.engine.catalog.table(DECISION_TABLE)
        doomed = [
            rowid
            for rowid, row in table.scan()
            if row["gtid"] in resolved_gtids
        ]
        if not doomed:
            return 0

        def work(conn: Any) -> None:
            for rowid in doomed:
                self.engine.delete_row(DECISION_TABLE, rowid, conn=conn)

        self.engine.run_in_transaction(None, work)
        self.engine.wal.flush()
        return len(doomed)
