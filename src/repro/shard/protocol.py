"""Length-prefixed frame protocol between coordinator and workers.

One frame = a 4-byte big-endian payload length followed by that many
bytes of compact JSON.  JSON (not pickle) keeps the wire debuggable,
language-neutral, and — more importantly — safe: a worker never
executes coordinator bytes, it interprets a small op vocabulary.

Requests and responses carry a monotonically increasing ``id`` per
channel; a worker processes requests in order and replies in order, so
the coordinator can *pipeline* — send one batched frame to every shard,
then collect replies — which is where multi-core parallelism comes
from (all workers run their batch concurrently while the coordinator
waits).

Batching discipline mirrors the storage layer's: one frame carries a
whole ``publish_batch``/``consume_batch``/``ack_batch``, so per-message
wire overhead amortizes exactly like per-message commit overhead does
(PR 1 / PR 6 lessons applied to IPC).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.errors import ShardProtocolError
from repro.queues.message import Message, MessageState

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload: a malformed/hostile length
#: prefix must not make the reader allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize ``obj`` and write it as one frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Any | None:
    """Read one frame; returns the decoded object, or ``None`` on clean
    EOF (peer closed between frames).  Raises
    :class:`ShardProtocolError` on a truncated or malformed frame and
    lets ``socket.timeout`` propagate (the caller owns deadlines).
    """
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(f"frame header claims {length} bytes")
    payload = _recv_exact(sock, length, eof_ok=False)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardProtocolError(f"undecodable frame: {exc}") from None


def _recv_exact(
    sock: socket.socket, count: int, *, eof_ok: bool
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ShardProtocolError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- message <-> wire form ----------------------------------------------------

_WIRE_FIELDS = (
    "payload",
    "priority",
    "correlation_id",
    "headers",
    "expires_at",
    "visible_at",
)


def message_to_wire(message: Message) -> dict[str, Any]:
    """Producer-side fields of a message, for a publish op.

    Enqueue-time fields (``enqueued_at``, ``state``, trace stamping)
    are assigned by the owning shard's queue table, exactly as in the
    single-process path."""
    wire: dict[str, Any] = {}
    for fieldname in _WIRE_FIELDS:
        value = getattr(message, fieldname)
        if value not in (None, {}, 0) or fieldname == "payload":
            wire[fieldname] = value
    return wire


def wire_to_message(wire: dict[str, Any]) -> Message:
    return Message(
        payload=wire.get("payload"),
        priority=int(wire.get("priority") or 0),
        correlation_id=wire.get("correlation_id"),
        headers=dict(wire.get("headers") or {}),
        expires_at=wire.get("expires_at"),
        visible_at=wire.get("visible_at"),
    )


def exported_to_wire(message: Message) -> dict[str, Any]:
    """Producer fields plus the exporting shard's message id.

    Snapshot form used to seed a replica from its primary: the replica
    re-enqueues the producer fields (a LOCKED original lands READY — a
    promoted replica redelivers unacked work, exactly like a restarted
    primary's ``recover_locked``) and keeps ``primary_id`` so acks
    shipped later by primary id find the right local row."""
    wire = message_to_wire(message)
    wire["primary_id"] = message.message_id
    return wire


def consumed_to_wire(message: Message) -> dict[str, Any]:
    """Full snapshot of a dequeued (LOCKED) message for the consume
    reply — the coordinator rebuilds an identical :class:`Message`."""
    return {
        "payload": message.payload,
        "queue": message.queue,
        "message_id": message.message_id,
        "priority": message.priority,
        "enqueued_at": message.enqueued_at,
        "visible_at": message.visible_at,
        "expires_at": message.expires_at,
        "correlation_id": message.correlation_id,
        "headers": message.headers,
        "attempts": message.attempts,
        "state": message.state.value,
        "consumer": message.consumer,
    }


def wire_to_consumed(wire: dict[str, Any]) -> Message:
    return Message(
        payload=wire["payload"],
        queue=wire["queue"],
        message_id=wire["message_id"],
        priority=wire["priority"],
        enqueued_at=wire["enqueued_at"],
        visible_at=wire["visible_at"],
        expires_at=wire["expires_at"],
        correlation_id=wire["correlation_id"],
        headers=wire["headers"],
        attempts=wire["attempts"],
        state=MessageState(wire["state"]),
        consumer=wire["consumer"],
    )
