"""The shard coordinator: worker lifecycle, routing, and 2PC driving.

The coordinator is deliberately thin — it owns no queue state.  It
spawns one worker process per shard (each a full :class:`Database` +
:class:`QueueBroker` stack over its own WAL file), routes requests by
consistent hash of the queue/topic name, and drives two-phase commit
for the rare cross-shard atomic operation, journaling decisions in its
*own* small engine (``coordinator.wal``) so a crash between phases is
recoverable.

Parallelism model: each worker channel is strictly ordered
request/reply, so the coordinator can **pipeline** — send one batched
frame to every involved shard, *then* collect the replies
(:meth:`ShardCoordinator.scatter`).  While it waits, every worker is
executing its batch on its own core; that concurrency, not any change
to the storage layer, is the scale-out mechanism EXP-11 measures.
"""

from __future__ import annotations

import multiprocessing
import socket
from typing import Any, Iterable

from repro.db.database import Database
from repro.errors import (
    ShardError,
    ShardWorkerDied,
    ShardWorkerError,
)
from repro.shard.hashring import ShardMap, ShardRouter
from repro.shard.protocol import recv_frame, send_frame
from repro.shard.twopc import ABORTED, COMMITTED, DecisionLog, new_gtid
from repro.shard.worker import worker_main

#: Per-request deadline.  Workers answer small batches in milliseconds;
#: a stuck/dead worker must surface as ShardWorkerDied, not a hang.
DEFAULT_TIMEOUT = 30.0


class WorkerHandle:
    """One worker process plus its coordinator-side channel end."""

    def __init__(
        self,
        shard_id: int,
        config: dict[str, Any],
        *,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.shard_id = shard_id
        self.config = dict(config)
        self.timeout = timeout
        self._next_id = 0
        parent_sock, child_sock = socket.socketpair()
        ctx = multiprocessing.get_context("fork")
        self.process = ctx.Process(
            target=worker_main,
            args=(child_sock, self.config),
            name=f"shard-worker-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()  # the child holds its own copy
        parent_sock.settimeout(timeout)
        self.sock = parent_sock
        self.alive = True

    # -- framed request/reply -----------------------------------------------

    def send(self, op: str, args: dict[str, Any] | None = None) -> int:
        """Ship one request frame; returns its id (for :meth:`recv`).
        Send/recv are split so the coordinator can pipeline across
        workers."""
        if not self.alive:
            raise ShardWorkerDied(
                f"shard {self.shard_id} worker is down", shard=self.shard_id
            )
        self._next_id += 1
        request_id = self._next_id
        try:
            send_frame(self.sock, {"id": request_id, "op": op, "args": args or {}})
        except (OSError, BrokenPipeError) as exc:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} channel send failed: {exc}",
                shard=self.shard_id,
            ) from None
        return request_id

    def recv(self, request_id: int) -> Any:
        """Collect the reply for ``request_id`` (replies arrive in send
        order, so this is a single recv)."""
        try:
            frame = recv_frame(self.sock)
        except socket.timeout:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} timed out after {self.timeout}s",
                shard=self.shard_id,
            ) from None
        except OSError as exc:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} channel failed: {exc}",
                shard=self.shard_id,
            ) from None
        if frame is None:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} worker exited", shard=self.shard_id
            )
        if frame.get("id") != request_id:
            self._mark_dead()
            raise ShardError(
                f"shard {self.shard_id}: reply id {frame.get('id')!r} "
                f"!= expected {request_id}"
            )
        if not frame.get("ok"):
            raise ShardWorkerError(
                frame.get("error", "shard worker error"),
                kind=frame.get("kind", "ReproError"),
                shard=self.shard_id,
            )
        return frame.get("result")

    def call(self, op: str, args: dict[str, Any] | None = None) -> Any:
        """Synchronous convenience: send + recv one request."""
        return self.recv(self.send(op, args))

    def _mark_dead(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass

    def stop(self, *, graceful: bool = True) -> None:
        if self.alive and graceful:
            try:
                self.call("shutdown")
            except (ShardError, OSError):
                pass
        self._mark_dead()
        if self.process.is_alive():
            self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()

    def kill(self) -> None:
        """Hard-kill the worker (crash simulation — no shutdown frame,
        no WAL flush beyond what already committed)."""
        self._mark_dead()
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


class ShardCoordinator:
    """Owns the shard map, the worker fleet, and the 2PC decision log."""

    def __init__(
        self,
        num_shards: int = 2,
        *,
        data_dir: str | None = None,
        shard_map: ShardMap | None = None,
        sync_policy: str = "commit",
        group_commit_size: int = 64,
        timeout: float = DEFAULT_TIMEOUT,
        worker_faults: dict[int, dict[str, Any]] | None = None,
    ) -> None:
        """Args:
        data_dir: directory for per-shard WAL files (``shard-<i>.wal``)
            and the coordinator's decision journal
            (``coordinator.wal``).  ``None`` runs everything in memory
            — fast, recoverable only within the process, right for
            benchmarks.
        worker_faults: per-shard fault specs (see
            :func:`repro.shard.worker.build_injector`) for crash tests.
        """
        self.map = shard_map or ShardMap(range(num_shards))
        self.router = ShardRouter(self.map)
        self.data_dir = data_dir
        self.sync_policy = sync_policy
        self.group_commit_size = group_commit_size
        self.timeout = timeout
        self._worker_faults = worker_faults or {}
        decision_path = None
        if data_dir is not None:
            import os

            os.makedirs(data_dir, exist_ok=True)
            decision_path = os.path.join(data_dir, "coordinator.wal")
        self.engine = Database(path=decision_path, sync_policy=sync_policy)
        self.decisions = DecisionLog(self.engine)
        self.workers: dict[int, WorkerHandle] = {}
        for shard_id in self.map.shard_ids:
            self.workers[shard_id] = self._spawn(shard_id)

    # -- worker lifecycle ---------------------------------------------------

    def _wal_path(self, shard_id: int) -> str | None:
        if self.data_dir is None:
            return None
        import os

        return os.path.join(self.data_dir, f"shard-{shard_id}.wal")

    def _spawn(self, shard_id: int) -> WorkerHandle:
        config = {
            "shard_id": shard_id,
            "wal_path": self._wal_path(shard_id),
            "sync_policy": self.sync_policy,
            "group_commit_size": self.group_commit_size,
            "fault": self._worker_faults.get(shard_id),
        }
        return WorkerHandle(shard_id, config, timeout=self.timeout)

    def worker(self, shard_id: int) -> WorkerHandle:
        try:
            return self.workers[shard_id]
        except KeyError:
            raise ShardError(f"no worker for shard {shard_id}") from None

    def shard_for(self, name: str) -> int:
        return self.router.shard_for(name)

    def restart_worker(
        self, shard_id: int, *, fault: dict[str, Any] | None = None,
        graceful: bool = True,
    ) -> dict[str, Any]:
        """Respawn ``shard_id``'s worker over the SAME WAL path (the
        recovery path), then resolve any in-doubt 2PC transactions it
        reports against the decision journal.  Returns the worker's
        ping summary plus the resolution outcomes.

        ``graceful=True`` asks the old worker to flush and exit (a
        no-op if it already died); ``graceful=False`` hard-kills it,
        losing any group-commit-buffered tail — the crash simulation.
        """
        old = self.workers.get(shard_id)
        if old is not None:
            old.stop(graceful=graceful)
        if fault is not None:
            self._worker_faults[shard_id] = fault
        else:
            self._worker_faults.pop(shard_id, None)
        handle = self._spawn(shard_id)
        self.workers[shard_id] = handle
        summary = handle.call("ping")
        summary["resolved"] = self._resolve_indoubt(handle)
        return summary

    def _resolve_indoubt(self, handle: WorkerHandle) -> dict[str, str]:
        """Presumed-abort resolution: commit iff the decision journal
        says so; otherwise journal an abort and tell the worker."""
        outcomes: dict[str, str] = {}
        for gtid in handle.call("list_indoubt"):
            decision = self.decisions.decision_for(gtid)
            if decision is None:
                decision = ABORTED
                self.decisions.record(gtid, decision)
            handle.call("resolve", {"gtid": gtid, "decision": decision})
            outcomes[gtid] = decision
        return outcomes

    # -- pipelined fan-out --------------------------------------------------

    def scatter(
        self, requests: Iterable[tuple[int, str, dict[str, Any]]]
    ) -> dict[int, Any]:
        """Send every ``(shard_id, op, args)`` request, THEN collect the
        replies — all involved workers execute concurrently.  Raises the
        first error after all replies are in (no worker is left with an
        unread reply in its channel)."""
        pending: list[tuple[int, int]] = []
        for shard_id, op, args in requests:
            handle = self.worker(shard_id)
            pending.append((shard_id, handle.send(op, args)))
        results: dict[int, Any] = {}
        first_error: Exception | None = None
        for shard_id, request_id in pending:
            try:
                results[shard_id] = self.worker(shard_id).recv(request_id)
            except (ShardWorkerError, ShardWorkerDied) as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def broadcast(self, op: str, args: dict[str, Any] | None = None) -> dict[int, Any]:
        """``scatter`` the same request to every live shard."""
        return self.scatter(
            (shard_id, op, args or {})
            for shard_id, handle in self.workers.items()
            if handle.alive
        )

    # -- two-phase commit ---------------------------------------------------

    def two_phase_publish(
        self, ops_by_shard: dict[int, list[dict[str, Any]]]
    ) -> str:
        """Atomically apply enqueue ops spanning multiple shards.

        Phase 1 scatters ``prepare`` (each worker journals its intent
        and votes).  All-yes → the decision journal records COMMITTED
        (the commit point) → phase 2 scatters the decision.  Any no-vote
        or dead worker during phase 1 → ABORTED.  Phase 2 errors are
        tolerated: the decision is journaled, so a worker that missed it
        resolves on restart (:meth:`restart_worker`).
        """
        gtid = new_gtid()
        votes_ok = True
        try:
            self.scatter(
                (shard_id, "prepare", {"gtid": gtid, "ops": ops})
                for shard_id, ops in ops_by_shard.items()
            )
        except (ShardWorkerError, ShardWorkerDied):
            votes_ok = False
        decision = COMMITTED if votes_ok else ABORTED
        self.decisions.record(gtid, decision)  # THE commit point
        for shard_id in ops_by_shard:
            handle = self.workers.get(shard_id)
            if handle is None or not handle.alive:
                continue  # resolved at restart via the decision journal
            try:
                handle.call("decide", {"gtid": gtid, "decision": decision})
            except (ShardWorkerError, ShardWorkerDied):
                continue
        if not votes_ok:
            raise ShardError(f"cross-shard transaction {gtid} aborted")
        return gtid

    # -- metrics / lifecycle ------------------------------------------------

    def metrics_by_shard(self) -> dict[int, dict[str, Any]]:
        """Every live worker's metrics snapshot, keyed by shard id."""
        return self.broadcast("metrics")

    def metrics(self) -> dict[str, Any]:
        """Fleet-wide metrics: every worker's snapshot folded into one
        (per-shard counters/gauges retained under ``shard=<id>`` keys),
        plus the coordinator engine's own snapshot."""
        from repro.obs.metrics import merge_snapshots

        per_shard = self.metrics_by_shard()
        per_shard["coordinator"] = self.engine.metrics()
        return merge_snapshots(per_shard, label_name="shard")

    def stop(self) -> None:
        from repro.obs.metrics import absorb_snapshot

        for handle in self.workers.values():
            if handle.alive:
                try:
                    absorb_snapshot(handle.call("metrics"))
                except ShardError:
                    pass
        for handle in self.workers.values():
            handle.stop()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
