"""The shard coordinator: worker lifecycle, routing, replication, 2PC.

The coordinator is deliberately thin — it owns no queue state.  It
spawns one **primary** worker process per shard (each a full
:class:`Database` + :class:`QueueBroker` stack over its own WAL file),
routes requests by consistent hash of the queue/topic name, and drives
two-phase commit for the rare cross-shard atomic operation, journaling
decisions in its *own* small engine (``coordinator.wal``) so a crash
between phases is recoverable.

PR 8 adds the availability half (ROADMAP item 1):

* ``replication_factor=K`` spawns K **replica** workers per shard,
  seeded from a primary snapshot and kept close by asynchronous log
  shipping (:mod:`repro.shard.replication`) of committed mutations.
* :meth:`mutate` is the single choke point every state-changing op goes
  through: apply on the primary, record the replication entry tagged
  with the primary's post-op WAL LSN, ship.
* :meth:`promote_replica` turns the freshest replica into the primary
  after catching it up from the shipped log — the coordinator's log,
  not the dead primary's WAL, is what makes failover lossless for
  acknowledged ops.
* While a shard has no live primary, writes can wait in a bounded
  per-shard **spool** (flushed after recovery, in order) or fail fast
  with :class:`ShardUnavailable` — the broker selects per its policy.

Parallelism model: each worker channel is strictly ordered
request/reply, so the coordinator can **pipeline** — send one batched
frame to every involved shard, *then* collect the replies
(:meth:`ShardCoordinator.scatter`).  While it waits, every worker is
executing its batch on its own core; that concurrency, not any change
to the storage layer, is the scale-out mechanism EXP-11 measures.

Thread model: a supervisor may probe and repair the fleet from a
background thread, so every channel-touching entry point takes the
coordinator-wide re-entrant lock — two threads must never interleave
frames on one strictly-ordered channel.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from collections import deque
from typing import Any, Iterable

from repro.db.database import Database
from repro.errors import (
    ShardError,
    ShardUnavailable,
    ShardWorkerDied,
    ShardWorkerError,
)
from repro.shard.hashring import ShardMap, ShardRouter
from repro.shard.protocol import recv_frame, send_frame
from repro.shard.replication import ReplicaState, ShardReplicator
from repro.shard.twopc import ABORTED, COMMITTED, DecisionLog, new_gtid
from repro.shard.worker import worker_main

#: Per-request deadline.  Workers answer small batches in milliseconds;
#: a stuck/dead worker must surface as ShardWorkerDied, not a hang.
DEFAULT_TIMEOUT = 30.0

#: Writes a shard's spool will hold while its primary is being
#: recovered, before the spool itself starts failing fast.
DEFAULT_SPOOL_LIMIT = 512


class WorkerHandle:
    """One worker process plus its coordinator-side channel end."""

    def __init__(
        self,
        shard_id: int,
        config: dict[str, Any],
        *,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.shard_id = shard_id
        self.config = dict(config)
        self.timeout = timeout
        self.role = config.get("role", "primary")
        #: WAL position reported with the worker's most recent reply —
        #: what LSN-tags this worker's replication entries.
        self.last_lsn: int | None = None
        self._next_id = 0
        parent_sock, child_sock = socket.socketpair()
        ctx = multiprocessing.get_context("fork")
        self.process = ctx.Process(
            target=worker_main,
            args=(child_sock, self.config),
            name=f"shard-worker-{shard_id}-{self.role}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()  # the child holds its own copy
        parent_sock.settimeout(timeout)
        self.sock = parent_sock
        self.alive = True

    # -- framed request/reply -----------------------------------------------

    def send(self, op: str, args: dict[str, Any] | None = None) -> int:
        """Ship one request frame; returns its id (for :meth:`recv`).
        Send/recv are split so the coordinator can pipeline across
        workers."""
        if not self.alive:
            raise ShardWorkerDied(
                f"shard {self.shard_id} worker is down", shard=self.shard_id
            )
        self._next_id += 1
        request_id = self._next_id
        try:
            send_frame(self.sock, {"id": request_id, "op": op, "args": args or {}})
        except (OSError, BrokenPipeError) as exc:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} channel send failed: {exc}",
                shard=self.shard_id,
            ) from None
        return request_id

    def recv(self, request_id: int) -> Any:
        """Collect the reply for ``request_id`` (replies arrive in send
        order, so this is a single recv)."""
        try:
            frame = recv_frame(self.sock)
        except socket.timeout:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} timed out after {self.timeout}s",
                shard=self.shard_id,
            ) from None
        except OSError as exc:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} channel failed: {exc}",
                shard=self.shard_id,
            ) from None
        if frame is None:
            self._mark_dead()
            raise ShardWorkerDied(
                f"shard {self.shard_id} worker exited", shard=self.shard_id
            )
        if frame.get("id") != request_id:
            self._mark_dead()
            raise ShardError(
                f"shard {self.shard_id}: reply id {frame.get('id')!r} "
                f"!= expected {request_id}"
            )
        if frame.get("lsn") is not None:
            self.last_lsn = frame["lsn"]
        if not frame.get("ok"):
            raise ShardWorkerError(
                frame.get("error", "shard worker error"),
                kind=frame.get("kind", "ReproError"),
                shard=self.shard_id,
            )
        return frame.get("result")

    def call(
        self,
        op: str,
        args: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Synchronous convenience: send + recv one request.

        ``timeout`` overrides the channel deadline for THIS request
        only — the supervisor probes with a heartbeat deadline much
        tighter than the 30s op deadline."""
        request_id = self.send(op, args)
        if timeout is None:
            return self.recv(request_id)
        self.sock.settimeout(timeout)
        try:
            return self.recv(request_id)
        finally:
            if self.alive:
                self.sock.settimeout(self.timeout)

    def _mark_dead(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass

    def stop(self, *, graceful: bool = True) -> None:
        if self.alive and graceful:
            try:
                self.call("shutdown")
            except (ShardError, OSError):
                pass
        self._mark_dead()
        if self.process.is_alive():
            self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()

    def kill(self) -> None:
        """Hard-kill the worker (crash simulation — no shutdown frame,
        no WAL flush beyond what already committed)."""
        self._mark_dead()
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


class FleetView(dict):
    """Per-shard results of a non-strict fan-out.

    A plain ``dict`` of the shards that answered, plus ``missing`` (the
    shard ids that could not) and ``errors`` (shard id → the exception
    that removed it).  Old callers that iterate the mapping keep
    working; fleet-health callers read the extra fields instead of
    losing the whole view to one dead worker.
    """

    def __init__(self) -> None:
        super().__init__()
        self.missing: list[int] = []
        self.errors: dict[int, Exception] = {}


class ShardCoordinator:
    """Owns the shard map, the worker fleet, replication, and 2PC."""

    def __init__(
        self,
        num_shards: int = 2,
        *,
        data_dir: str | None = None,
        shard_map: ShardMap | None = None,
        sync_policy: str = "commit",
        group_commit_size: int = 64,
        timeout: float = DEFAULT_TIMEOUT,
        worker_faults: dict[int, dict[str, Any]] | None = None,
        replication_factor: int = 0,
        replica_faults: dict[Any, dict[str, Any]] | None = None,
        spool_limit: int = DEFAULT_SPOOL_LIMIT,
        auto_ship: bool = True,
        clock: Any | None = None,
    ) -> None:
        """Args:
        data_dir: directory for per-shard WAL files (``shard-<i>.wal``)
            and the coordinator's decision journal
            (``coordinator.wal``).  ``None`` runs everything in memory
            — fast, recoverable only within the process, right for
            benchmarks.
        worker_faults: per-shard fault specs (see
            :func:`repro.shard.worker.build_injector`) for crash tests.
        replication_factor: replica workers per shard (0 = PR 7
            behaviour).  Replicas are always in-memory — durability is
            the primary WAL's job; replicas exist to serve reads and
            take over.
        replica_faults: fault specs for replica workers — keyed by
            shard id (armed in every replica of that shard) or by
            ``(shard_id, replica_index)`` (one specific replica);
            promotion-crash tests arm the candidate that way.
        spool_limit: writes a shard's spool holds during recovery.
        auto_ship: ship each replication entry as it is recorded
            (default); False lets tests control shipping explicitly.
        clock: optional clock for the coordinator's own engine.
        """
        self.map = shard_map or ShardMap(range(num_shards))
        self.router = ShardRouter(self.map)
        self.data_dir = data_dir
        self.sync_policy = sync_policy
        self.group_commit_size = group_commit_size
        self.timeout = timeout
        self._worker_faults = worker_faults or {}
        self._replica_faults = replica_faults or {}
        self.replication_factor = max(0, int(replication_factor))
        self.spool_limit = spool_limit
        decision_path = None
        if data_dir is not None:
            import os

            os.makedirs(data_dir, exist_ok=True)
            decision_path = os.path.join(data_dir, "coordinator.wal")
        self.engine = Database(path=decision_path, sync_policy=sync_policy,
                               clock=clock)
        self.decisions = DecisionLog(self.engine)
        # One re-entrant lock for every channel-touching operation: the
        # supervisor thread and the caller's thread must never
        # interleave frames on a strictly-ordered channel.
        self._lock = threading.RLock()
        self.replicator = ShardReplicator(self, auto_ship=auto_ship)
        self.replicas: dict[int, list[ReplicaState]] = {}
        #: Committed 2PC ops a dead primary never confirmed applying —
        #: re-applied to whichever worker next owns the shard.
        self._undelivered: dict[int, dict[str, list[dict[str, Any]]]] = {}
        self._spool: dict[int, deque] = {}
        #: shard id → monotonic deadline of the supervisor's next
        #: recovery attempt; the retry-after hint in ShardUnavailable.
        self.retry_hints: dict[int, float] = {}
        self.supervisor: Any | None = None  # attached by ShardSupervisor
        self.workers: dict[int, WorkerHandle] = {}
        for shard_id in self.map.shard_ids:
            self.workers[shard_id] = self._spawn(shard_id)
        # A restarted coordinator over a durable decision journal must
        # finish what it started: resolve anything the fleet still
        # holds in doubt (presumed abort unless journaled committed).
        if decision_path is not None:
            for handle in self.workers.values():
                self._resolve_indoubt(handle)
        for shard_id in self.map.shard_ids:
            self.replicas[shard_id] = [
                self._spawn_replica(shard_id, index)
                for index in range(self.replication_factor)
            ]

    # -- worker lifecycle ---------------------------------------------------

    def _wal_path(self, shard_id: int) -> str | None:
        if self.data_dir is None:
            return None
        import os

        return os.path.join(self.data_dir, f"shard-{shard_id}.wal")

    def _spawn(self, shard_id: int) -> WorkerHandle:
        config = {
            "shard_id": shard_id,
            "role": "primary",
            "wal_path": self._wal_path(shard_id),
            "sync_policy": self.sync_policy,
            "group_commit_size": self.group_commit_size,
            "fault": self._worker_faults.get(shard_id),
        }
        return WorkerHandle(shard_id, config, timeout=self.timeout)

    def _spawn_replica(self, shard_id: int, index: int) -> ReplicaState:
        """Spawn one replica worker and seed it from the primary's
        current snapshot (no-op snapshot if the primary is down — the
        supervisor reseeds after recovery)."""
        config = {
            "shard_id": shard_id,
            "role": "replica",
            "wal_path": None,
            "sync_policy": "none",
            "group_commit_size": 1,
            "fault": self._replica_faults.get(
                (shard_id, index), self._replica_faults.get(shard_id)
            ),
        }
        handle = WorkerHandle(shard_id, config, timeout=self.timeout)
        replica = ReplicaState(handle, tag=f"r{index}")
        try:
            self._seed_replica(shard_id, replica)
        except ShardError:
            pass  # seeded later by the supervisor once a primary lives
        return replica

    def _seed_replica(self, shard_id: int, replica: ReplicaState) -> None:
        """Snapshot the primary into ``replica`` and start its cursor
        at the replication log head (the snapshot reflects every entry
        recorded so far — both happen under the coordinator lock)."""
        with self._lock:
            primary = self.worker(shard_id)
            snapshot = primary.call("export_queues")
            log = self.replicator.log_for(shard_id)
            replica.handle.call(
                "import_queues",
                {"queues": snapshot["queues"], "applied_seq": log.last_seq},
            )
            replica.acked_seq = log.last_seq

    def reseed_replicas(self, shard_id: int) -> int:
        """Re-snapshot every live replica from the current primary —
        required after any primary restart, because a restart may lose
        a group-commit-buffered tail the replicas already applied
        (replicas must never run AHEAD of their primary)."""
        reseeded = 0
        with self._lock:
            for replica in self.replicas.get(shard_id, []):
                if not replica.alive:
                    continue
                try:
                    self._seed_replica(shard_id, replica)
                    reseeded += 1
                except ShardError:
                    self.replicator.stats["replica_failures"] += 1
        return reseeded

    def worker(self, shard_id: int) -> WorkerHandle:
        try:
            return self.workers[shard_id]
        except KeyError:
            raise ShardError(f"no worker for shard {shard_id}") from None

    def shard_for(self, name: str) -> int:
        return self.router.shard_for(name)

    def primary_alive(self, shard_id: int) -> bool:
        handle = self.workers.get(shard_id)
        return handle is not None and handle.alive

    def live_replica(self, shard_id: int) -> ReplicaState | None:
        """The freshest live replica (promotion candidate / stale-read
        server), or ``None``."""
        best: ReplicaState | None = None
        for replica in self.replicas.get(shard_id, []):
            if replica.alive and (best is None or replica.acked_seq > best.acked_seq):
                best = replica
        return best

    def restart_worker(
        self, shard_id: int, *, fault: dict[str, Any] | None = None,
        graceful: bool = True, preserve_fault: bool = False,
    ) -> dict[str, Any]:
        """Respawn ``shard_id``'s primary over the SAME WAL path (the
        recovery path), then resolve any in-doubt 2PC transactions it
        reports against the decision journal, apply committed 2PC ops
        the dead incarnation never confirmed, flush the write spool,
        and reseed the replicas.  Returns the worker's ping summary
        plus the resolution outcomes.

        ``graceful=True`` asks the old worker to flush and exit (a
        no-op if it already died); ``graceful=False`` hard-kills it,
        losing any group-commit-buffered tail — the crash simulation.
        ``preserve_fault=True`` re-arms the previous fault spec (the
        supervisor's circuit-breaker tests need a worker that keeps
        crashing); the default clears it so a restart is clean.
        """
        with self._lock:
            old = self.workers.get(shard_id)
            if old is not None:
                old.stop(graceful=graceful)
            if fault is not None:
                self._worker_faults[shard_id] = fault
            elif not preserve_fault:
                self._worker_faults.pop(shard_id, None)
            handle = self._spawn(shard_id)
            self.workers[shard_id] = handle
            summary = handle.call("ping")
            summary["resolved"] = self._resolve_indoubt(handle)
            self._deliver_undelivered(shard_id, handle)
            self.engine.obs.counter("shard.restarts", shard=shard_id).inc()
            self.reseed_replicas(shard_id)
            summary["spooled"] = self.flush_spool(shard_id)
            self.retry_hints.pop(shard_id, None)
            return summary

    def _resolve_indoubt(self, handle: WorkerHandle) -> dict[str, str]:
        """Presumed-abort resolution: commit iff the decision journal
        says so; otherwise journal an abort and tell the worker."""
        outcomes: dict[str, str] = {}
        for gtid in handle.call("list_indoubt"):
            decision = self.decisions.decision_for(gtid)
            if decision is None:
                decision = ABORTED
                self.decisions.record(gtid, decision)
            result = handle.call("resolve", {"gtid": gtid, "decision": decision})
            if decision == COMMITTED and result.get("applied"):
                # The in-doubt gtid's ops are no longer pending here.
                self._undelivered.get(handle.shard_id, {}).pop(gtid, None)
            outcomes[gtid] = decision
        return outcomes

    def _deliver_undelivered(self, shard_id: int, handle: WorkerHandle) -> None:
        """Apply committed 2PC enqueues the shard's dead incarnation
        never confirmed.  Only needed when the new worker has no
        participant record of the gtid (an in-memory fleet, or a
        promoted replica) — a durable restart resolves via
        ``_resolve_indoubt`` instead."""
        pending = self._undelivered.pop(shard_id, None)
        if not pending:
            return
        for gtid, ops in sorted(pending.items()):
            state = handle.call("twopc_state", {"gtid": gtid})
            if state == COMMITTED:
                continue  # the WAL preserved the application
            per_queue: dict[str, list[dict[str, Any]]] = {}
            for op in ops:
                per_queue.setdefault(op["queue"], []).append(op["message"])
            for queue, messages in per_queue.items():
                result = handle.call(
                    "publish_batch", {"queue": queue, "messages": messages}
                )
                self.replicator.record_mutation(
                    shard_id,
                    "publish_batch",
                    {"queue": queue, "messages": messages},
                    result,
                    lsn=handle.last_lsn,
                )

    # -- promotion ----------------------------------------------------------

    def promote_replica(self, shard_id: int) -> dict[str, Any]:
        """Make the freshest live replica the shard's primary.

        Sequence: pick the replica with the highest shipped sequence →
        drain the replication log into it synchronously → send
        ``promote`` (the worker flips its role and accepts the full op
        vocabulary) → flip coordinator routing → re-apply committed
        2PC ops the dead primary never confirmed → flush the spool.
        Raises :class:`ShardUnavailable` when no replica can take over.
        """
        with self._lock:
            old = self.workers.get(shard_id)
            if old is not None and old.alive:
                old.kill()  # fencing: never two primaries
            last_error: Exception | None = None
            while True:
                replica = self.live_replica(shard_id)
                if replica is None:
                    raise ShardUnavailable(
                        f"shard {shard_id} has no live replica to promote",
                        shard=shard_id,
                        retry_after=self.retry_hints.get(shard_id),
                    ) from last_error
                try:
                    self.replicator.catch_up(shard_id, replica)
                    summary = replica.handle.call("promote")
                    break
                except ShardError as exc:
                    last_error = exc
                    replica.handle._mark_dead()
            self.replicas[shard_id] = [
                other
                for other in self.replicas.get(shard_id, [])
                if other is not replica
            ]
            replica.handle.role = "primary"
            self.workers[shard_id] = replica.handle
            self.engine.obs.counter("shard.promotions", shard=shard_id).inc()
            self._deliver_undelivered(shard_id, replica.handle)
            summary["spooled"] = self.flush_spool(shard_id)
            self.retry_hints.pop(shard_id, None)
            return summary

    # -- degraded-mode write spool ------------------------------------------

    def spool_write(self, shard_id: int, op: str, args: dict[str, Any]) -> int:
        """Queue a write for replay after the shard recovers.  Bounded:
        a full spool fails fast — unbounded buffering would turn an
        outage into an OOM.  Returns the spool depth."""
        spool = self._spool.setdefault(shard_id, deque())
        if len(spool) >= self.spool_limit:
            raise ShardUnavailable(
                f"shard {shard_id} spool is full ({self.spool_limit})",
                shard=shard_id,
                retry_after=self.retry_hints.get(shard_id),
            )
        spool.append((op, args))
        depth = len(spool)
        self.engine.obs.gauge("shard.spool_depth", shard=shard_id).set(depth)
        return depth

    def flush_spool(self, shard_id: int) -> int:
        """Replay spooled writes, in order, against the shard's current
        primary.  Called under the lock by the recovery paths."""
        spool = self._spool.get(shard_id)
        if not spool:
            return 0
        flushed = 0
        while spool:
            op, args = spool[0]
            self.mutate(shard_id, op, args)
            spool.popleft()
            flushed += 1
        self.engine.obs.gauge("shard.spool_depth", shard=shard_id).set(0)
        return flushed

    def spool_depth(self, shard_id: int) -> int:
        return len(self._spool.get(shard_id, ()))

    # -- routed single-shard ops --------------------------------------------

    def call(self, shard_id: int, op: str, args: dict[str, Any] | None = None) -> Any:
        """A read-only op on the shard's primary (no replication)."""
        with self._lock:
            return self.worker(shard_id).call(op, args)

    def mutate(self, shard_id: int, op: str, args: dict[str, Any]) -> Any:
        """A state-changing op: apply on the primary, then record the
        replication entry tagged with the primary's post-op WAL LSN.
        The single choke point that keeps replicas convergent — every
        writer (broker, spool replay, 2PC redelivery) lands here."""
        with self._lock:
            handle = self.worker(shard_id)
            result = handle.call(op, args)
            self.replicator.record_mutation(
                shard_id, op, args, result, lsn=handle.last_lsn
            )
            return result

    def replica_read(
        self, shard_id: int, op: str, args: dict[str, Any] | None = None
    ) -> tuple[Any, dict[str, Any]]:
        """Serve a read from the freshest live replica, returning
        ``(result, staleness)`` where staleness carries ``stale=True``
        and the lag bound.  Raises :class:`ShardUnavailable` when no
        replica lives either."""
        with self._lock:
            replica = self.live_replica(shard_id)
            if replica is None:
                raise ShardUnavailable(
                    f"shard {shard_id} has no live primary or replica",
                    shard=shard_id,
                    retry_after=self.retry_hints.get(shard_id),
                )
            result = replica.handle.call(op, args)
            lag = self.replicator.lag(shard_id)
            self.engine.obs.counter("shard.stale_reads", shard=shard_id).inc()
            return result, {
                "stale": True,
                "lag_ops": self.replicator.log_for(shard_id).last_seq
                - replica.acked_seq,
                "replica": replica.tag,
                "last_lsn": lag["last_lsn"],
            }

    # -- pipelined fan-out --------------------------------------------------

    def scatter(
        self,
        requests: Iterable[tuple[int, str, dict[str, Any]]],
        *,
        strict: bool = True,
    ) -> dict[int, Any]:
        """Send every ``(shard_id, op, args)`` request, THEN collect the
        replies — all involved workers execute concurrently.

        ``strict=True`` raises the first error after all replies are in
        (no worker is left with an unread reply in its channel);
        ``strict=False`` returns a :class:`FleetView` carrying partial
        results plus the shards that failed."""
        with self._lock:
            pending: list[tuple[int, int]] = []
            results = FleetView()
            for shard_id, op, args in requests:
                try:
                    handle = self.worker(shard_id)
                    pending.append((shard_id, handle.send(op, args)))
                except (ShardError, ShardWorkerDied) as exc:
                    results.missing.append(shard_id)
                    results.errors[shard_id] = exc
            first_error: Exception | None = None
            for shard_id, request_id in pending:
                try:
                    results[shard_id] = self.worker(shard_id).recv(request_id)
                except (ShardWorkerError, ShardWorkerDied) as exc:
                    results.missing.append(shard_id)
                    results.errors[shard_id] = exc
                    if first_error is None:
                        first_error = exc
            if strict and results.errors:
                raise next(iter(results.errors.values()))
            return results

    def broadcast(
        self,
        op: str,
        args: dict[str, Any] | None = None,
        *,
        strict: bool = False,
    ) -> FleetView:
        """``scatter`` the same request to every shard.  Non-strict by
        default: dead shards land in the view's ``missing`` field
        instead of losing the whole fleet view.  Shards whose worker is
        already marked down are reported missing without a send."""
        with self._lock:
            view = self.scatter(
                (
                    (shard_id, op, args or {})
                    for shard_id, handle in self.workers.items()
                    if handle.alive
                ),
                strict=strict,
            )
            for shard_id, handle in self.workers.items():
                if not handle.alive and shard_id not in view.missing:
                    view.missing.append(shard_id)
                    view.errors[shard_id] = ShardWorkerDied(
                        f"shard {shard_id} worker is down", shard=shard_id
                    )
            view.missing.sort()
            if strict and view.missing:
                raise view.errors[view.missing[0]]
            return view

    # -- two-phase commit ---------------------------------------------------

    def two_phase_publish(
        self, ops_by_shard: dict[int, list[dict[str, Any]]]
    ) -> str:
        """Atomically apply enqueue ops spanning multiple shards.

        Phase 1 scatters ``prepare`` (each worker journals its intent
        and votes).  All-yes → the decision journal records COMMITTED
        (the commit point) → phase 2 scatters the decision.  Any no-vote
        or dead worker during phase 1 → ABORTED.  Phase 2 errors are
        tolerated: the decision is journaled, so a worker that missed it
        resolves on restart (:meth:`restart_worker`) — and the ops park
        in ``_undelivered`` so a *promotion* (which installs a worker
        with no participant record) can still apply them.
        """
        with self._lock:
            gtid = new_gtid()
            votes_ok = True
            try:
                self.scatter(
                    (shard_id, "prepare", {"gtid": gtid, "ops": ops})
                    for shard_id, ops in ops_by_shard.items()
                )
            except (ShardWorkerError, ShardWorkerDied):
                votes_ok = False
            decision = COMMITTED if votes_ok else ABORTED
            # THE commit point (with the participant set, for compaction).
            self.decisions.record(
                gtid, decision, participants=list(ops_by_shard)
            )
            for shard_id, ops in ops_by_shard.items():
                handle = self.workers.get(shard_id)
                if handle is None or not handle.alive:
                    if decision == COMMITTED:
                        self._undelivered.setdefault(shard_id, {})[gtid] = ops
                    continue  # resolved at restart via the decision journal
                try:
                    result = handle.call(
                        "decide", {"gtid": gtid, "decision": decision}
                    )
                except (ShardWorkerError, ShardWorkerDied):
                    if decision == COMMITTED:
                        self._undelivered.setdefault(shard_id, {})[gtid] = ops
                    continue
                if decision == COMMITTED and result.get("applied"):
                    self.replicator.record_applied(
                        shard_id, ops, result.get("ids") or {},
                        lsn=handle.last_lsn,
                    )
            if not votes_ok:
                raise ShardError(f"cross-shard transaction {gtid} aborted")
            return gtid

    def compact_decisions(self) -> int:
        """Reclaim decision-journal rows every participant has durably
        resolved (satellite fix: the journal previously grew without
        bound).  A gtid is reclaimable when each of its recorded
        participants reports it ``committed``/``aborted`` — i.e. no
        shard can ever again ask about it.  Decisions whose participant
        set is unknown (legacy rows) or whose participants include a
        currently-dead shard are kept."""
        with self._lock:
            by_shard: dict[int, list[str]] = {}
            candidates: dict[str, list[int]] = {}
            for row in self.decisions.rows():
                if not row["participants"]:
                    continue
                candidates[row["gtid"]] = row["participants"]
                for shard_id in row["participants"]:
                    by_shard.setdefault(shard_id, []).append(row["gtid"])
            if not candidates:
                return 0
            states = self.scatter(
                (
                    (shard_id, "twopc_states", {"gtids": gtids})
                    for shard_id, gtids in by_shard.items()
                    if self.primary_alive(shard_id)
                ),
                strict=False,
            )
            resolved = {
                gtid
                for gtid, participants in candidates.items()
                if all(
                    shard_id in states
                    and states[shard_id].get(gtid) in (COMMITTED, ABORTED)
                    for shard_id in participants
                )
            }
            return self.decisions.compact(resolved)

    # -- metrics / lifecycle ------------------------------------------------

    def metrics_by_shard(self) -> FleetView:
        """Every live worker's metrics snapshot, keyed by shard id;
        dead shards are listed in the view's ``missing`` field."""
        return self.broadcast("metrics")

    def metrics(self) -> dict[str, Any]:
        """Fleet-wide metrics: every worker's snapshot folded into one
        (per-shard counters/gauges retained under ``shard=<id>`` keys),
        plus the coordinator engine's own snapshot."""
        from repro.obs.metrics import merge_snapshots

        per_shard: dict[Any, Any] = dict(self.metrics_by_shard())
        per_shard["coordinator"] = self.engine.metrics()
        return merge_snapshots(per_shard, label_name="shard")

    def fleet_state(self) -> dict[int, dict[str, Any]]:
        """Per-shard fleet health: primary liveness, replica lag, spool
        depth — the coordinator-owned half of ``stats --shards``."""
        with self._lock:
            state: dict[int, dict[str, Any]] = {}
            for shard_id in self.map.shard_ids:
                replicas = self.replicas.get(shard_id, [])
                state[shard_id] = {
                    "primary_alive": self.primary_alive(shard_id),
                    "replicas": len(replicas),
                    "replicas_alive": sum(1 for r in replicas if r.alive),
                    "replication": self.replicator.lag(shard_id),
                    "spool_depth": self.spool_depth(shard_id),
                    "undelivered_gtids": len(self._undelivered.get(shard_id, {})),
                }
            return state

    def stop(self) -> None:
        from repro.obs.metrics import absorb_snapshot

        if self.supervisor is not None:
            try:
                self.supervisor.stop_thread()
            except Exception:
                pass
        with self._lock:
            for handle in self.workers.values():
                if handle.alive:
                    try:
                        absorb_snapshot(handle.call("metrics"))
                    except ShardError:
                        pass
            for handle in self.workers.values():
                handle.stop()
            for replicas in self.replicas.values():
                for replica in replicas:
                    replica.handle.stop()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
