"""Primary→replica log shipping for the shard fleet.

Each shard's primary remains the single writer; the coordinator keeps a
per-shard **replication log** of the mutations it successfully applied
there (tagged with the sequence number the coordinator assigns and the
primary's WAL LSN after the op), and ships the log asynchronously to
that shard's replica workers over the ordinary frame protocol.  The
client's op is acknowledged by the primary alone — replication never
sits on the publish path — so a replica is always *possibly stale*,
and the lag (in ops and LSNs) is observable per shard.

Three properties make this safe to run under the supervisor:

* **Entries are logical, idempotent units.**  A replica applies
  ``publish``/``ack``/``create_queue``/``drop_queue`` entries in
  sequence order and remembers the highest sequence applied, so a
  re-shipped batch (after a timeout whose reply was lost) is skipped,
  not re-applied.
* **Id translation.**  Publish entries carry the primary's assigned
  message ids; the replica maps them to its own rowids so a later
  ``ack`` (shipped by primary id) lands on the right replica row even
  if the two engines assigned different ids.
* **Trim follows the slowest live replica.**  The log retains exactly
  the entries some live replica still needs.  Dead replicas are
  respawned from a primary *snapshot* (export/import), entering at the
  log head, so their backlog is never needed and never pins memory.

Promotion (see :mod:`repro.shard.supervisor`) ships the chosen
replica's remaining entries synchronously before routing flips — the
coordinator's log, not the dead primary's WAL, is what makes failover
lossless for every op the coordinator acknowledged.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import ShardError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.shard.coordinator import ShardCoordinator, WorkerHandle


class ReplicaState:
    """One replica worker plus its coordinator-side shipping cursor."""

    __slots__ = ("handle", "acked_seq", "tag")

    def __init__(self, handle: "WorkerHandle", *, acked_seq: int = 0,
                 tag: str = "") -> None:
        self.handle = handle
        self.acked_seq = acked_seq
        self.tag = tag

    @property
    def alive(self) -> bool:
        return self.handle.alive


class ReplicationLog:
    """One shard's retained tail of LSN-tagged mutation entries."""

    def __init__(self) -> None:
        self._entries: deque[dict[str, Any]] = deque()
        self.last_seq = 0
        self.last_lsn: int | None = None

    def append(self, entry: dict[str, Any], *, lsn: int | None) -> int:
        self.last_seq += 1
        entry = dict(entry)
        entry["seq"] = self.last_seq
        entry["lsn"] = lsn
        self.last_lsn = lsn
        self._entries.append(entry)
        return self.last_seq

    def pending_after(self, seq: int) -> list[dict[str, Any]]:
        return [entry for entry in self._entries if entry["seq"] > seq]

    def trim_through(self, seq: int) -> int:
        """Drop entries with sequence ≤ ``seq``; returns how many."""
        dropped = 0
        while self._entries and self._entries[0]["seq"] <= seq:
            self._entries.popleft()
            dropped += 1
        return dropped

    def __len__(self) -> int:
        return len(self._entries)


#: Ops the coordinator mirrors to replicas, and how each maps to a
#: replication entry kind.  Reads and ``consume``/``requeue`` are
#: deliberately absent: a replica never sees lock state (a promoted
#: replica re-serves unacked messages, exactly like a restarted
#: primary's ``recover_locked``).
_MUTATION_KINDS = frozenset(
    {"publish_batch", "ack", "ack_batch", "create_queue", "drop_queue"}
)


class ShardReplicator:
    """Records committed primary mutations and ships them to replicas."""

    def __init__(self, coordinator: "ShardCoordinator", *,
                 auto_ship: bool = True) -> None:
        self.coordinator = coordinator
        #: When True (default) every recorded mutation is shipped in the
        #: same call — lag stays ~0 but shipping cost rides the caller.
        #: Tests and batch loads set False and pump :meth:`ship`.
        self.auto_ship = auto_ship
        self.logs: dict[int, ReplicationLog] = {}
        self.stats = {"recorded": 0, "shipped": 0, "replica_failures": 0}

    def log_for(self, shard_id: int) -> ReplicationLog:
        log = self.logs.get(shard_id)
        if log is None:
            log = self.logs[shard_id] = ReplicationLog()
        return log

    # -- recording ----------------------------------------------------------

    def record_mutation(
        self,
        shard_id: int,
        op: str,
        args: dict[str, Any],
        result: Any,
        *,
        lsn: int | None,
    ) -> None:
        """Append the replication entry for a primary op that just
        succeeded (no-op for reads and for shards with no replicas)."""
        if op not in _MUTATION_KINDS:
            return
        if not self.coordinator.replicas.get(shard_id):
            return
        if op == "publish_batch":
            entry = {
                "kind": "publish",
                "queue": args["queue"],
                "messages": args["messages"],
                "ids": result,
            }
        elif op == "ack":
            entry = {"kind": "ack", "queue": args["queue"],
                     "ids": [args["message_id"]]}
        elif op == "ack_batch":
            entry = {"kind": "ack", "queue": args["queue"],
                     "ids": list(args["message_ids"])}
        elif op == "create_queue":
            entry = {
                "kind": "create_queue",
                "name": args["name"],
                "keep_history": args.get("keep_history", False),
                "default_expiration": args.get("default_expiration"),
            }
        else:  # drop_queue
            entry = {"kind": "drop_queue", "name": args["name"]}
        self._append(shard_id, entry, lsn)

    def record_applied(
        self,
        shard_id: int,
        ops: list[dict[str, Any]],
        ids_by_queue: dict[str, list[int]],
        *,
        lsn: int | None,
    ) -> None:
        """Record the enqueue effects of a committed 2PC decision
        (``ops`` as prepared, ``ids_by_queue`` as the worker applied
        them) so replicas converge with the primary's 2PC commits."""
        if not self.coordinator.replicas.get(shard_id):
            return
        per_queue: dict[str, list[dict[str, Any]]] = {}
        for op in ops:
            per_queue.setdefault(op["queue"], []).append(op["message"])
        for queue, messages in per_queue.items():
            self._append(
                shard_id,
                {
                    "kind": "publish",
                    "queue": queue,
                    "messages": messages,
                    "ids": ids_by_queue.get(queue),
                },
                lsn,
            )

    def _append(self, shard_id: int, entry: dict[str, Any],
                lsn: int | None) -> None:
        self.log_for(shard_id).append(entry, lsn=lsn)
        self.stats["recorded"] += 1
        if self.auto_ship:
            self.ship(shard_id)

    # -- shipping -----------------------------------------------------------

    def ship(self, shard_id: int) -> int:
        """Ship pending entries to every live replica of ``shard_id``.

        Replica failures are absorbed (the replica is marked dead for
        the supervisor to respawn) — shipping must never fail the
        client op it piggybacks on.  Returns entries delivered to the
        slowest replica that made progress.
        """
        log = self.logs.get(shard_id)
        replicas = self.coordinator.replicas.get(shard_id, [])
        if log is None or not replicas:
            return 0
        delivered = 0
        for replica in replicas:
            if not replica.alive:
                continue
            pending = log.pending_after(replica.acked_seq)
            if not pending:
                continue
            try:
                result = replica.handle.call("replicate", {"entries": pending})
            except ShardError:
                self.stats["replica_failures"] += 1
                continue
            replica.acked_seq = int(result["applied_seq"])
            delivered = max(delivered, len(pending))
            self.stats["shipped"] += len(pending)
        self._trim(shard_id)
        self._publish_lag_gauge(shard_id)
        return delivered

    def catch_up(self, shard_id: int, replica: ReplicaState) -> int:
        """Synchronously drain the log into one replica (the promotion
        prelude).  Raises on failure — a replica that cannot catch up
        must not be promoted."""
        log = self.log_for(shard_id)
        pending = log.pending_after(replica.acked_seq)
        if pending:
            result = replica.handle.call("replicate", {"entries": pending})
            replica.acked_seq = int(result["applied_seq"])
            self.stats["shipped"] += len(pending)
        if replica.acked_seq < log.last_seq:
            raise ShardError(
                f"shard {shard_id} replica caught up only to seq "
                f"{replica.acked_seq} of {log.last_seq}"
            )
        return len(pending)

    def _trim(self, shard_id: int) -> None:
        log = self.logs.get(shard_id)
        if log is None:
            return
        live = [
            replica.acked_seq
            for replica in self.coordinator.replicas.get(shard_id, [])
            if replica.alive
        ]
        # No live replica: any future replica is snapshot-seeded at the
        # head, so the whole tail is dead weight.
        log.trim_through(min(live) if live else log.last_seq)

    # -- observability ------------------------------------------------------

    def lag(self, shard_id: int) -> dict[str, Any]:
        """The shard's replication lag: ops behind (slowest live
        replica) plus the log head in (seq, lsn) terms."""
        log = self.logs.get(shard_id)
        replicas = [
            replica
            for replica in self.coordinator.replicas.get(shard_id, [])
            if replica.alive
        ]
        last_seq = log.last_seq if log is not None else 0
        min_acked = min(
            (replica.acked_seq for replica in replicas), default=None
        )
        return {
            "last_seq": last_seq,
            "last_lsn": log.last_lsn if log is not None else None,
            "min_acked_seq": min_acked,
            "lag_ops": (last_seq - min_acked) if min_acked is not None else None,
            "live_replicas": len(replicas),
        }

    def _publish_lag_gauge(self, shard_id: int) -> None:
        lag = self.lag(shard_id)
        self.coordinator.engine.obs.gauge(
            "shard.replica_lag", shard=shard_id
        ).set(lag["lag_ops"] if lag["lag_ops"] is not None else -1)


__all__ = ["ReplicaState", "ReplicationLog", "ShardReplicator"]
