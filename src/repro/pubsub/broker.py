"""The pub/sub broker: topics, subscriptions, application activation.

Local message consumption per §2.2.d.i: durable subscribers' events are
spooled in database-backed queues; when a subscriber attaches a
listener the broker *activates* it — drains its backlog and then
invokes it inline for each new delivery, exactly the "message store may
have to activate applications as needed" behaviour.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.db.engine import StorageEngine
from repro.errors import PubSubError, TopicNotFoundError
from repro.events import KIND_DATA, Event
from repro.faults import PUBSUB_CONSUMER
from repro.obs.trace import record_hop
from repro.pubsub.subscription import Callback, TopicSubscription
from repro.pubsub.topic import Topic, topic_matches
from repro.queues.broker import QueueBroker
from repro.queues.message import Message


def _event_to_payload(topic: str, event: Event) -> dict[str, Any]:
    return {
        "topic": topic,
        "event_type": event.event_type,
        "timestamp": event.timestamp,
        "payload": {
            key: value
            for key, value in event.payload.items()
            if _jsonable(value)
        },
        "source": event.source,
        "trace_id": event.trace_id,
        "kind": event.kind,
    }


def _jsonable(value: Any) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def _payload_to_event(data: dict[str, Any]) -> Event:
    return Event(
        event_type=data["event_type"],
        timestamp=data["timestamp"],
        payload=data["payload"],
        source=data.get("source", ""),
        trace_id=data.get("trace_id"),
        kind=data.get("kind", KIND_DATA),
    )


class PubSubBroker:
    """Topics + subscriptions over one database."""

    def __init__(self, db: StorageEngine, *, name: str = "pubsub") -> None:
        self.db = db
        self.name = name
        self.queues = QueueBroker(db, name=f"{name}-queues")
        self._topics: dict[str, Topic] = {}
        self._subscriptions: dict[str, TopicSubscription] = {}
        self._listeners: dict[str, Callback] = {}
        self.stats = {"published": 0, "delivered": 0, "spooled": 0}
        obs = db.obs
        self._m_published = obs.counter("pubsub.published", broker=name)
        self._m_delivered = obs.counter("pubsub.delivered", broker=name)
        self._m_spooled = obs.counter("pubsub.spooled", broker=name)

    # -- topics ---------------------------------------------------------------

    def create_topic(self, name: str, *, retain: bool = False) -> Topic:
        name = name.lower()
        if name in self._topics:
            raise PubSubError(f"topic {name!r} already exists")
        topic = Topic(name, retain=retain)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name.lower()]
        except KeyError:
            raise TopicNotFoundError(f"topic {name!r} does not exist") from None

    def topic_names(self) -> list[str]:
        return sorted(self._topics)

    # -- subscriptions ------------------------------------------------------------

    def subscribe(
        self,
        subscriber: str,
        topic_pattern: str,
        *,
        content_filter: str | None = None,
        durable: bool = False,
        callback: Callback | None = None,
    ) -> TopicSubscription:
        """Register a subscription.

        Nondurable subscriptions require a callback.  Durable ones get a
        backing queue named ``sub_<subscriber>``; attach a listener (or
        poll :meth:`fetch`) to consume.  A durable subscriber receives a
        topic's retained event immediately upon subscribing.
        """
        if subscriber in self._subscriptions:
            raise PubSubError(f"subscriber {subscriber!r} already registered")
        if not durable and callback is None:
            raise PubSubError(
                "a nondurable subscription needs a callback (it has no queue)"
            )
        subscription = TopicSubscription.build(
            subscriber,
            topic_pattern,
            content_filter=content_filter,
            durable=durable,
            callback=callback,
        )
        if durable:
            queue_name = f"sub_{subscriber.lower()}"
            if not self.queues.has_queue(queue_name):
                self.queues.create_queue(queue_name)
            subscription.queue_name = queue_name
        self._subscriptions[subscriber] = subscription
        # Retained state for late durable/callback subscribers.
        for topic in self._topics.values():
            if topic.retained is not None and topic_matches(
                subscription.topic_pattern, topic.name
            ):
                if subscription.accepts(topic.retained):
                    self._deliver(subscription, topic.name, topic.retained)
        return subscription

    def unsubscribe(self, subscriber: str) -> None:
        subscription = self._subscriptions.pop(subscriber, None)
        if subscription is None:
            raise PubSubError(f"subscriber {subscriber!r} is not registered")
        self._listeners.pop(subscriber, None)

    def subscription(self, subscriber: str) -> TopicSubscription:
        try:
            return self._subscriptions[subscriber]
        except KeyError:
            raise PubSubError(
                f"subscriber {subscriber!r} is not registered"
            ) from None

    # -- publication ----------------------------------------------------------------

    def publish(self, topic_name: str, event: Event) -> int:
        """Publish to a topic; returns the number of deliveries."""
        topic = self.topic(topic_name)
        topic.record(event)
        self.stats["published"] += 1
        self._m_published.inc()
        record_hop(
            event.trace_id,
            "pubsub.publish",
            self.db.clock.now(),
            broker=self.name,
            topic=topic.name,
        )
        deliveries = 0
        for subscription in self._subscriptions.values():
            if not topic_matches(subscription.topic_pattern, topic.name):
                continue
            if not subscription.accepts(event):
                continue
            self._deliver(subscription, topic.name, event)
            deliveries += 1
        return deliveries

    def _deliver(
        self, subscription: TopicSubscription, topic_name: str, event: Event
    ) -> None:
        subscription.delivered += 1
        if subscription.durable:
            # Carry the event's trace id in the spool message's headers
            # so queue hops and redeliveries stay on the same trace.
            self.queues.publish(
                subscription.queue_name,
                Message(
                    payload=_event_to_payload(topic_name, event),
                    headers=(
                        {"trace_id": event.trace_id}
                        if event.trace_id is not None
                        else {}
                    ),
                ),
            )
            self.stats["spooled"] += 1
            self._m_spooled.inc()
            listener = self._listeners.get(subscription.subscriber)
            if listener is not None:
                self._drain(subscription, listener)
        else:
            subscription.callback(event)
            self.stats["delivered"] += 1
            self._m_delivered.inc()
            record_hop(
                event.trace_id,
                "pubsub.deliver",
                self.db.clock.now(),
                broker=self.name,
                subscriber=subscription.subscriber,
            )

    # -- consumption / application activation ------------------------------------------

    def attach_listener(self, subscriber: str, callback: Callback) -> int:
        """Activate an application for a durable subscription.

        Drains the backlog immediately (returns how many events were
        replayed) and keeps delivering inline as new events arrive,
        until :meth:`detach_listener`.
        """
        subscription = self.subscription(subscriber)
        if not subscription.durable:
            raise PubSubError(
                "attach_listener applies to durable subscriptions only"
            )
        self._listeners[subscriber] = callback
        return self._drain(subscription, callback)

    def detach_listener(self, subscriber: str) -> None:
        self._listeners.pop(subscriber, None)

    def _drain(self, subscription: TopicSubscription, callback: Callback) -> int:
        drained = 0
        while True:
            message = self.queues.consume(
                subscription.queue_name, principal=subscription.subscriber
            )
            if message is None:
                return drained
            event = _payload_to_event(message.payload)
            try:
                self._fire_consumer_failpoint(subscription, event)
                callback(event)
            except Exception as exc:
                # The raising callback is accounted for before the
                # message is requeued and the exception re-raised to the
                # caller (the activation contract): the failure is never
                # invisible even if the caller swallows it.
                self.db.obs.record_error("pubsub.drain", exc)
                self.queues.requeue(
                    subscription.queue_name,
                    message.message_id,
                    principal=subscription.subscriber,
                )
                raise
            self.queues.ack(
                subscription.queue_name,
                message.message_id,
                principal=subscription.subscriber,
            )
            self.stats["delivered"] += 1
            self._m_delivered.inc()
            record_hop(
                event.trace_id,
                "pubsub.deliver",
                self.db.clock.now(),
                broker=self.name,
                subscriber=subscription.subscriber,
            )
            drained += 1

    def _fire_consumer_failpoint(
        self, subscription: TopicSubscription, event: Event
    ) -> None:
        """Hit the ``pubsub.consumer`` failpoint (fault-injection tests
        model a crashing activated application here)."""
        faults = self.db.faults
        if faults is not None:
            faults.fire(
                PUBSUB_CONSUMER,
                broker=self,
                subscriber=subscription.subscriber,
                event=event,
            )

    def fetch(self, subscriber: str) -> Event | None:
        """Pull one spooled event for a durable subscription (manual
        consumption instead of listener activation)."""
        subscription = self.subscription(subscriber)
        if not subscription.durable:
            raise PubSubError("fetch applies to durable subscriptions only")
        message = self.queues.consume(
            subscription.queue_name, principal=subscriber
        )
        if message is None:
            return None
        self.queues.ack(
            subscription.queue_name, message.message_id, principal=subscriber
        )
        self.stats["delivered"] += 1
        self._m_delivered.inc()
        event = _payload_to_event(message.payload)
        record_hop(
            event.trace_id,
            "pubsub.deliver",
            self.db.clock.now(),
            broker=self.name,
            subscriber=subscriber,
        )
        return event

    def backlog(self, subscriber: str) -> int:
        subscription = self.subscription(subscriber)
        if not subscription.durable:
            return 0
        return self.queues.queue(subscription.queue_name).depth()
