"""Topic subscriptions: durable and nondurable, with content filters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.db.expr import Expression, compile_predicate
from repro.db.sql.parser import parse_expression
from repro.events import Event
from repro.rules.engine import EventContext

Callback = Callable[[Event], None]


@dataclass
class TopicSubscription:
    """One subscriber's registration on a topic pattern.

    Nondurable subscriptions deliver straight to ``callback`` and miss
    events published while the subscriber is detached.  Durable
    subscriptions spool matched events into a per-subscriber queue
    (owned by the broker) and survive subscriber restarts — the
    database-backed guarantee the tutorial emphasizes.
    """

    subscriber: str
    topic_pattern: str
    content_filter: Expression | None = None
    durable: bool = False
    callback: Callback | None = None
    queue_name: str | None = None
    delivered: int = 0
    filtered_out: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        subscriber: str,
        topic_pattern: str,
        *,
        content_filter: str | Expression | None = None,
        durable: bool = False,
        callback: Callback | None = None,
    ) -> "TopicSubscription":
        if isinstance(content_filter, str):
            content_filter = parse_expression(content_filter)
        return cls(
            subscriber=subscriber,
            topic_pattern=topic_pattern.lower(),
            content_filter=content_filter,
            durable=durable,
            callback=callback,
        )

    def accepts(self, event: Event) -> bool:
        """Apply the content filter (absent attributes read as NULL)."""
        if self.content_filter is None:
            return True
        context = EventContext(event.payload)
        context.setdefault("event_type", event.event_type)
        context.setdefault("timestamp", event.timestamp)
        # compile_predicate memoizes the closure on the expression tree,
        # so repeated deliveries pay no per-event AST walk.
        if compile_predicate(self.content_filter)(context):
            return True
        self.filtered_out += 1
        return False
