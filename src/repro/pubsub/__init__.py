"""Message consumption and distribution (paper §2.2.d).

* :class:`PubSubBroker` — topics, durable/nondurable subscriptions with
  content filters, and *application activation*: the message store
  invokes registered listeners when messages arrive (§2.2.d.i).
* :class:`StagingTopology` / :class:`Router` — multi-hop forwarding
  between staging areas with failure-aware rerouting (§2.2.d.ii.1).
* :class:`DeliveryManager` — at-least-once delivery with ack deadlines,
  redelivery, and a dead-letter queue (§2.2.d.iii.3).
"""

from repro.pubsub.broker import PubSubBroker
from repro.pubsub.delivery import DeliveryManager
from repro.pubsub.routing import Router, StagingTopology
from repro.pubsub.subscription import TopicSubscription
from repro.pubsub.topic import Topic

__all__ = [
    "Topic",
    "TopicSubscription",
    "PubSubBroker",
    "StagingTopology",
    "Router",
    "DeliveryManager",
]
