"""Topics: named publication channels with optional retained state."""

from __future__ import annotations

from repro.events import Event


class Topic:
    """One publication channel.

    ``retain`` keeps the last published event so late subscribers can
    receive current state immediately (the "initial value" pattern of
    monitoring dashboards).
    """

    def __init__(self, name: str, *, retain: bool = False) -> None:
        self.name = name.lower()
        self.retain = retain
        self.retained: Event | None = None
        self.published = 0

    def __repr__(self) -> str:
        return f"Topic({self.name!r}, published={self.published})"

    def record(self, event: Event) -> None:
        self.published += 1
        if self.retain:
            self.retained = event


def topic_matches(pattern: str, topic: str) -> bool:
    """Topic pattern matching: exact, ``*`` (all), or ``a.b.*`` prefix."""
    if pattern == "*" or pattern == topic:
        return True
    if pattern.endswith(".*"):
        return topic.startswith(pattern[:-1])
    return False
