"""Multi-hop routing between staging areas (§2.2.d.ii.1).

A :class:`StagingTopology` is a weighted graph (networkx) whose nodes
are staging areas — each one a :class:`repro.pubsub.PubSubBroker` with
its own database — and whose edges are propagation links with a
latency cost.  The :class:`Router` forwards an event from one area to
another along the cheapest live path, republishing at each hop and
stamping the route into the payload for auditability ("tracking",
§2.2.d.iii.1).

Failure injection (``fail_link``/``restore_link``) lets tests and EXP-8
verify rerouting: when an edge goes down, delivery follows the next
cheapest path, and a partitioned destination raises
:class:`repro.errors.RoutingError`.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from repro.errors import RoutingError
from repro.events import Event
from repro.pubsub.broker import PubSubBroker


class StagingTopology:
    """The graph of staging areas and propagation links."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._brokers: dict[str, PubSubBroker] = {}

    def add_area(self, name: str, broker: PubSubBroker) -> None:
        name = name.lower()
        if name in self._brokers:
            raise RoutingError(f"staging area {name!r} already exists")
        self._brokers[name] = broker
        self._graph.add_node(name)

    def broker(self, name: str) -> PubSubBroker:
        try:
            return self._brokers[name.lower()]
        except KeyError:
            raise RoutingError(f"staging area {name!r} does not exist") from None

    def area_names(self) -> list[str]:
        return sorted(self._brokers)

    def add_link(self, source: str, dest: str, *, latency: float = 1.0) -> None:
        source, dest = source.lower(), dest.lower()
        for name in (source, dest):
            if name not in self._brokers:
                raise RoutingError(f"staging area {name!r} does not exist")
        self._graph.add_edge(source, dest, latency=latency, up=True)

    def fail_link(self, source: str, dest: str) -> None:
        self._set_link(source, dest, up=False)

    def restore_link(self, source: str, dest: str) -> None:
        self._set_link(source, dest, up=True)

    def _set_link(self, source: str, dest: str, *, up: bool) -> None:
        source, dest = source.lower(), dest.lower()
        if not self._graph.has_edge(source, dest):
            raise RoutingError(f"no link {source!r} -> {dest!r}")
        self._graph.edges[source, dest]["up"] = up

    def live_view(self) -> nx.DiGraph:
        """Subgraph of links currently up."""
        live = nx.DiGraph()
        live.add_nodes_from(self._graph.nodes)
        for source, dest, data in self._graph.edges(data=True):
            if data.get("up", True):
                live.add_edge(source, dest, latency=data["latency"])
        return live

    def shortest_path(self, source: str, dest: str) -> tuple[list[str], float]:
        """Cheapest live path and its total latency."""
        source, dest = source.lower(), dest.lower()
        live = self.live_view()
        try:
            path = nx.shortest_path(live, source, dest, weight="latency")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise RoutingError(
                f"no live route from {source!r} to {dest!r}"
            ) from None
        cost = sum(
            live.edges[a, b]["latency"] for a, b in zip(path, path[1:])
        )
        return path, cost


class Router:
    """Forwards events across the topology, hop by hop."""

    def __init__(self, topology: StagingTopology) -> None:
        self.topology = topology
        self.stats = {"routed": 0, "hops": 0, "failed": 0}

    def route(
        self,
        event: Event,
        *,
        source: str,
        dest: str,
        topic: str,
    ) -> dict[str, Any]:
        """Deliver ``event`` to ``topic`` at the destination area.

        The event is republished at every intermediate hop (so local
        subscribers along the path can also observe transit traffic on
        ``<topic>.transit``) and finally published on ``topic`` at the
        destination.  Returns routing metadata (path, cost).
        """
        try:
            path, cost = self.topology.shortest_path(source, dest)
        except RoutingError:
            self.stats["failed"] += 1
            raise
        routed = event.with_payload(
            route_path=list(path), route_cost=cost, route_source=source
        )
        for hop in path[1:-1]:
            broker = self.topology.broker(hop)
            transit_topic = f"{topic}.transit"
            if transit_topic not in broker.topic_names():
                broker.create_topic(transit_topic)
            broker.publish(transit_topic, routed)
            self.stats["hops"] += 1
        destination = self.topology.broker(dest)
        if topic not in destination.topic_names():
            destination.create_topic(topic)
        destination.publish(topic, routed)
        self.stats["hops"] += 1
        self.stats["routed"] += 1
        return {"path": path, "cost": cost}
