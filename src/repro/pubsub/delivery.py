"""At-least-once delivery with ack deadlines (§2.2.d.iii.3).

A :class:`DeliveryManager` sits between a queue and unreliable
consumers.  Each delivery must be acknowledged within ``ack_timeout``
(by the database clock); unacknowledged deliveries are requeued and
retried up to ``max_attempts``, after which the message moves to the
dead-letter queue.  Consumers that raise are treated as immediate
nacks.

Invariants (asserted by the tests):

* every enqueued message is eventually consumed exactly once by a
  successful consumer OR lands in the dead-letter queue;
* a message is never lost, even when consumers fail repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import json

from repro.errors import DeliveryError
from repro.faults import DELIVERY_CONSUMER
from repro.obs.trace import record_hop
from repro.queues.broker import QueueBroker
from repro.queues.message import Message

Consumer = Callable[[Message], None]


@dataclass
class _PendingAck:
    message_id: int
    deadline: float


class DeliveryManager:
    """Reliable consumption loop over one queue.

    **Driving contract**: ack deadlines are only enforced when this
    manager runs — :meth:`check_timeouts` executes at the top of every
    :meth:`deliver`, :meth:`process`, and :meth:`process_batch` call.
    There is no background thread, so if delivery stops (no new
    messages, dead consumer), a host loop must keep calling
    :meth:`process_batch` (or :meth:`check_timeouts` directly) on a
    timer; otherwise a crashed consumer's un-acked message is never
    redelivered.  :meth:`process_batch` is safe to drive on an empty
    queue precisely for this reason.
    """

    def __init__(
        self,
        broker: QueueBroker,
        queue_name: str,
        *,
        ack_timeout: float = 30.0,
        max_attempts: int = 5,
        dead_letter_queue: str | None = None,
    ) -> None:
        self.broker = broker
        self.queue_name = queue_name
        self.ack_timeout = ack_timeout
        self.max_attempts = max_attempts
        self.dead_letter_queue = dead_letter_queue
        if dead_letter_queue and not broker.has_queue(dead_letter_queue):
            broker.create_queue(dead_letter_queue)
        self._pending: dict[int, _PendingAck] = {}
        self.stats = {
            "delivered": 0,
            "acked": 0,
            "redelivered": 0,
            "consumer_errors": 0,
            "dead_lettered": 0,
        }
        self._obs = broker.db.obs
        self._m_delivered = self._obs.counter(
            "delivery.delivered", queue=queue_name
        )
        self._m_acked = self._obs.counter("delivery.acked", queue=queue_name)
        self._m_redelivered = self._obs.counter(
            "delivery.redelivered", queue=queue_name
        )
        self._m_consumer_errors = self._obs.counter(
            "delivery.consumer_errors", queue=queue_name
        )
        self._m_dead = self._obs.counter(
            "delivery.dead_lettered", queue=queue_name
        )
        # Enqueue → successful-consumption latency, in clock seconds.
        self._m_hop_latency = self._obs.histogram(
            "delivery.hop_latency", queue=queue_name
        )

    @property
    def clock(self):
        return self.broker.db.clock

    def _run_consumer(self, consumer: Consumer, message: Message) -> None:
        """Invoke the consumer, giving an armed ``delivery.consumer``
        failpoint first shot — an injected raise is indistinguishable
        from a consumer exception, so it flows into the nack/retry/DLQ
        machinery like any real failure."""
        faults = self.broker.db.faults
        if faults is not None:
            faults.fire(
                DELIVERY_CONSUMER,
                queue=self.queue_name,
                message=message,
                delivery=self,
            )
        consumer(message)

    # -- explicit ack protocol -----------------------------------------------

    def deliver(self, *, consumer_name: str = "consumer") -> Message | None:
        """Hand out the next message; the caller must :meth:`ack` it
        before the deadline or it will be redelivered."""
        self.check_timeouts()
        message = self.broker.consume(self.queue_name, principal=consumer_name)
        if message is None:
            return None
        self._pending[message.message_id] = _PendingAck(
            message_id=message.message_id,
            deadline=self.clock.now() + self.ack_timeout,
        )
        self.stats["delivered"] += 1
        self._m_delivered.inc()
        return message

    def ack(self, message_id: int) -> None:
        if message_id not in self._pending:
            raise DeliveryError(
                f"message {message_id} is not awaiting acknowledgement"
            )
        del self._pending[message_id]
        self.broker.ack(self.queue_name, message_id, principal="delivery")
        self.stats["acked"] += 1
        self._m_acked.inc()

    def nack(self, message_id: int, *, delay: float = 0.0) -> None:
        """Explicit negative ack: give the message back for retry."""
        pending = self._pending.pop(message_id, None)
        if pending is None:
            raise DeliveryError(
                f"message {message_id} is not awaiting acknowledgement"
            )
        self._retry_or_bury(message_id, delay=delay)

    def check_timeouts(self) -> int:
        """Requeue deliveries whose ack deadline passed; returns count."""
        now = self.clock.now()
        expired = [
            pending.message_id
            for pending in self._pending.values()
            if pending.deadline <= now
        ]
        for message_id in expired:
            del self._pending[message_id]
            self._retry_or_bury(message_id, delay=0.0)
        return len(expired)

    def _retry_or_bury(self, message_id: int, *, delay: float) -> None:
        queue = self.broker.queue(self.queue_name)
        table = self.broker.db.catalog.table(queue.table_name)
        row = table.get(message_id)
        attempts = row["attempts"] if row else self.max_attempts
        trace_id = None
        if row is not None and row.get("headers"):
            try:  # cold path: decode headers just for the trace hop
                trace_id = json.loads(row["headers"]).get("trace_id")
            except (ValueError, AttributeError):
                trace_id = None
        if attempts >= self.max_attempts:
            if self.dead_letter_queue:
                if row is not None:
                    message = Message.from_row(self.queue_name, message_id, row)
                    dead = Message(
                        payload=message.payload,
                        correlation_id=message.correlation_id,
                        headers={
                            **message.headers,
                            "dead_letter_reason": "max delivery attempts",
                            "origin_queue": self.queue_name,
                            "origin_message_id": message_id,
                        },
                    )
                else:
                    # The row vanished (e.g. the queue table was damaged
                    # or the message expired out from under us).  The
                    # payload is gone, but the *fact of the loss* must
                    # not be — dead-letter a tombstone naming the id so
                    # no message silently disappears.
                    dead = Message(
                        payload=None,
                        headers={
                            "dead_letter_reason": "message row unreadable",
                            "origin_queue": self.queue_name,
                            "origin_message_id": message_id,
                            "tombstone": True,
                        },
                    )
                self.broker.publish(self.dead_letter_queue, dead, principal="delivery")
                self.stats["dead_lettered"] += 1
                self._m_dead.inc()
                record_hop(
                    trace_id,
                    "delivery.dead_letter",
                    self.clock.now(),
                    queue=self.queue_name,
                    dlq=self.dead_letter_queue,
                )
            if row is not None:
                self.broker.ack(self.queue_name, message_id, principal="delivery")
        else:
            self.broker.requeue(
                self.queue_name, message_id, delay=delay, principal="delivery"
            )
            self.stats["redelivered"] += 1
            self._m_redelivered.inc()
            record_hop(
                trace_id,
                "delivery.redelivered",
                self.clock.now(),
                queue=self.queue_name,
                attempts=attempts,
            )

    # -- callback-style consumption --------------------------------------------

    def process(
        self, consumer: Consumer, *, batch: int = 100, consumer_name: str = "consumer"
    ) -> int:
        """Deliver up to ``batch`` messages to ``consumer``.

        Successful returns ack automatically; exceptions nack (retry).
        Returns the number successfully consumed.  One transaction per
        dequeue and per ack; prefer :meth:`process_batch` for the
        amortized path.
        """
        consumed = 0
        for _ in range(batch):
            message = self.deliver(consumer_name=consumer_name)
            if message is None:
                break
            try:
                self._run_consumer(consumer, message)
            except Exception as exc:
                # Formerly a silent drop of the exception object: the
                # error is retained and counted *before* the nack, so a
                # raising consumer is observable, not just retried.
                self.stats["consumer_errors"] += 1
                self._m_consumer_errors.inc()
                self._obs.record_error("delivery.process", exc)
                self.nack(message.message_id)
                continue
            self.ack(message.message_id)
            self._finish(message)
            consumed += 1
        return consumed

    def _finish(self, message: Message) -> None:
        """Success accounting shared by both consumption pumps."""
        now = self.clock.now()
        if message.enqueued_at:
            self._m_hop_latency.observe(now - message.enqueued_at)
        record_hop(
            message.headers.get("trace_id"),
            "delivery.consumed",
            now,
            queue=self.queue_name,
        )

    def process_batch(
        self, consumer: Consumer, *, batch: int = 100, consumer_name: str = "consumer"
    ) -> int:
        """Batched delivery pump: dequeue up to ``batch`` messages in
        one transaction, run ``consumer`` on each, then ack every
        success with ONE batch ack (failures nack individually).

        Always starts by enforcing ack deadlines, so driving this on an
        idle queue still redelivers timed-out messages from dead
        consumers (see the class docstring's driving contract).
        Returns the number successfully consumed.
        """
        self.check_timeouts()
        messages = self.broker.consume_batch(
            self.queue_name, batch, principal=consumer_name
        )
        deadline = self.clock.now() + self.ack_timeout
        for message in messages:
            self._pending[message.message_id] = _PendingAck(
                message_id=message.message_id, deadline=deadline
            )
        self.stats["delivered"] += len(messages)
        self._m_delivered.inc(len(messages))
        succeeded: list[Message] = []
        for message in messages:
            try:
                self._run_consumer(consumer, message)
            except Exception as exc:
                # Same boundary as process(): count and retain before
                # the nack so batch-path failures are equally visible.
                self.stats["consumer_errors"] += 1
                self._m_consumer_errors.inc()
                self._obs.record_error("delivery.process_batch", exc)
                self.nack(message.message_id)
                continue
            succeeded.append(message)
        if succeeded:
            for message in succeeded:
                del self._pending[message.message_id]
            self.broker.ack_batch(
                self.queue_name,
                [message.message_id for message in succeeded],
                principal="delivery",
            )
            self.stats["acked"] += len(succeeded)
            self._m_acked.inc(len(succeeded))
            for message in succeeded:
                self._finish(message)
        return len(succeeded)
