"""Continuous-query facade and registry.

:class:`ContinuousQuery` offers a fluent builder over the operator
modules so applications write::

    cq = (ContinuousQuery("hot_meters", source)
          .filter("usage > 100")
          .window_tumbling(60.0, key_field="meter_id")
          .aggregate("meter_minute", {"avg_usage": ("usage", Avg)})
          .sink(alerts.append))

:class:`CQEngine` names and owns queries, routes events to their source
streams, and exposes per-query statistics — the bookkeeping the
analytics layer (EXP-7) uses to score which queries are valuable.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cq.aggregate import AggregateSpec, WindowAggregate
from repro.cq.operators import FilterOperator, MapOperator, StreamTableJoin
from repro.cq.pattern import PatternMatcher, Seq
from repro.cq.stream import Stream
from repro.cq.window import (
    CountWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)
from repro.db.database import Database
from repro.errors import StreamError
from repro.events import Event


class ContinuousQuery:
    """A named dataflow pipeline built stage by stage."""

    def __init__(self, name: str, source: Stream | None = None) -> None:
        self.name = name
        self.source = source or Stream(f"{name}.source")
        self.head: Stream = self.source
        self._flushables: list[Any] = []
        self.outputs: list[Event] = []
        self._collect_outputs = False

    # -- builder stages ------------------------------------------------------

    def filter(self, condition: Any) -> "ContinuousQuery":
        self.head = FilterOperator(
            self.head, condition, name=f"{self.name}.filter"
        )
        return self

    def map(
        self, fn: Callable[[Event], Any], *, output_type: str | None = None
    ) -> "ContinuousQuery":
        self.head = MapOperator(
            self.head, fn, output_type=output_type, name=f"{self.name}.map"
        )
        return self

    def window_tumbling(
        self, size: float, *, key_field: str | None = None, allowed_lateness: float = 0.0
    ) -> "ContinuousQuery":
        window = TumblingWindow(
            self.head,
            size,
            key_field=key_field,
            allowed_lateness=allowed_lateness,
            name=f"{self.name}.window",
        )
        self._flushables.append(window)
        self.head = window
        return self

    def window_sliding(
        self, size: float, slide: float, *, key_field: str | None = None
    ) -> "ContinuousQuery":
        window = SlidingWindow(
            self.head, size, slide, key_field=key_field, name=f"{self.name}.window"
        )
        self._flushables.append(window)
        self.head = window
        return self

    def window_count(
        self, count: int, *, key_field: str | None = None
    ) -> "ContinuousQuery":
        window = CountWindow(
            self.head, count, key_field=key_field, name=f"{self.name}.window"
        )
        self._flushables.append(window)
        self.head = window
        return self

    def window_session(
        self, gap: float, *, key_field: str | None = None
    ) -> "ContinuousQuery":
        window = SessionWindow(
            self.head, gap, key_field=key_field, name=f"{self.name}.window"
        )
        self._flushables.append(window)
        self.head = window
        return self

    def aggregate(self, output_type: str, spec: AggregateSpec) -> "ContinuousQuery":
        self.head = WindowAggregate(
            self.head, output_type, spec, name=f"{self.name}.aggregate"
        )
        return self

    def pattern(
        self,
        pattern: Seq,
        *,
        output_type: str,
        selection: str = "skip_till_next",
        prune_expired: bool = True,
    ) -> "ContinuousQuery":
        self.head = PatternMatcher(
            self.head,
            pattern,
            output_type=output_type,
            selection=selection,
            prune_expired=prune_expired,
            name=f"{self.name}.pattern",
        )
        return self

    def lookup(
        self,
        db: Database,
        table_name: str,
        *,
        event_key: str,
        table_key: str,
        prefix: str = "",
    ) -> "ContinuousQuery":
        self.head = StreamTableJoin(
            self.head,
            db,
            table_name,
            event_key=event_key,
            table_key=table_key,
            prefix=prefix,
            name=f"{self.name}.lookup",
        )
        return self

    def sink(self, fn: Callable[[Event], None]) -> "ContinuousQuery":
        """Attach an output consumer (terminal but repeatable)."""
        self.head.subscribe(fn)
        return self

    def collect(self) -> "ContinuousQuery":
        """Also record outputs on ``self.outputs`` (tests, analytics)."""
        if not self._collect_outputs:
            self._collect_outputs = True
            self.head.subscribe(self.outputs.append)
        return self

    # -- runtime ----------------------------------------------------------------

    def push(self, event: Event) -> None:
        self.source.push(event)

    def flush(self) -> None:
        """Close open windows (end of stream / end of epoch)."""
        for stage in self._flushables:
            stage.flush()

    @property
    def events_in(self) -> int:
        return self.source.events_in

    @property
    def events_out(self) -> int:
        return self.head.events_out


class CQEngine:
    """Registry of continuous queries sharing one input feed."""

    def __init__(self) -> None:
        self._queries: dict[str, ContinuousQuery] = {}

    def register(self, query: ContinuousQuery) -> ContinuousQuery:
        if query.name in self._queries:
            raise StreamError(f"continuous query {query.name!r} already exists")
        self._queries[query.name] = query
        return query

    def deregister(self, name: str) -> None:
        if name not in self._queries:
            raise StreamError(f"continuous query {name!r} does not exist")
        del self._queries[name]

    def query(self, name: str) -> ContinuousQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise StreamError(f"continuous query {name!r} does not exist") from None

    def names(self) -> list[str]:
        return sorted(self._queries)

    def push(self, event: Event) -> None:
        """Feed one event to every registered query."""
        for query in self._queries.values():
            query.push(event)

    def flush(self) -> None:
        for query in self._queries.values():
            query.flush()

    def statistics(self) -> dict[str, dict[str, int]]:
        return {
            name: {"events_in": q.events_in, "events_out": q.events_out}
            for name, q in self._queries.items()
        }
