"""Continuous analytics: identify *valuable* continuous queries
(§2.2.c.i.4) and score streams for anomaly content.

Three layers:

* :class:`StreamStatistics` — running count/mean/variance (Welford),
  EWMA, and extremes for any numeric stream field.
* :class:`AnomalyDetector` — z-score of each observation against the
  EWMA baseline; emits deviation scores used by the sense-and-respond
  core.
* :class:`QueryValueScorer` — given candidate continuous queries run
  over a *labelled* stream (ground-truth critical timestamps), scores
  each query's output by precision/recall/timeliness and combines them
  into a value score.  "Continuous analytics provide the technology to
  identify valuable continuous queries" is the claim; EXP-7 checks that
  the scorer's top-k ranking recovers the queries that actually track
  the labelled condition.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import StreamError
from repro.events import Event


class StreamStatistics:
    """Running statistics over a numeric sequence."""

    def __init__(self, *, ewma_alpha: float = 0.1) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise StreamError("ewma_alpha must be in (0, 1]")
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.ewma: float | None = None
        self.ewma_alpha = ewma_alpha

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        if self.ewma is None:
            self.ewma = value
        else:
            self.ewma += self.ewma_alpha * (value - self.ewma)

    def merge(self, delta: "StreamStatistics") -> None:
        """Fold a partial (e.g. per-batch) statistics state into this one.

        Count/mean/variance merge exactly (Chan's parallel formula) and
        the extremes combine elementwise.  EWMA is inherently
        sequential, so the merged state adopts the delta's EWMA — the
        delta's observations are assumed to be the more recent, which
        is exactly what EWMA weights toward.
        """
        if delta.count == 0:
            return
        if self.count == 0:
            self.count = delta.count
            self.mean = delta.mean
            self._m2 = delta._m2
            self.minimum = delta.minimum
            self.maximum = delta.maximum
            self.ewma = delta.ewma
            return
        total = self.count + delta.count
        shift = delta.mean - self.mean
        self._m2 += delta._m2 + shift * shift * self.count * delta.count / total
        self.mean += shift * delta.count / total
        self.count = total
        if delta.minimum is not None:
            self.minimum = (
                delta.minimum
                if self.minimum is None
                else min(self.minimum, delta.minimum)
            )
        if delta.maximum is not None:
            self.maximum = (
                delta.maximum
                if self.maximum is None
                else max(self.maximum, delta.maximum)
            )
        if delta.ewma is not None:
            self.ewma = delta.ewma

    @property
    def variance(self) -> float:
        """Sample variance (0.0 until two observations arrive)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class AnomalyDetector:
    """Z-score anomaly detection against a running baseline.

    ``score(value)`` returns ``|value - baseline| / stddev`` (0.0 while
    warming up); ``observe`` also updates the baseline.  Scores at or
    above ``threshold`` count as anomalies.
    """

    def __init__(
        self,
        *,
        threshold: float = 3.0,
        ewma_alpha: float = 0.1,
        warmup: int = 10,
    ) -> None:
        self.stats = StreamStatistics(ewma_alpha=ewma_alpha)
        self.threshold = threshold
        self.warmup = warmup
        self.anomalies = 0

    def score(self, value: float) -> float:
        if self.stats.count < self.warmup:
            return 0.0
        baseline = self.stats.ewma if self.stats.ewma is not None else self.stats.mean
        deviation = abs(value - baseline)
        if self.stats.stddev == 0.0:
            # Zero-variance history: any departure is maximally surprising.
            return 0.0 if deviation == 0.0 else float("inf")
        return deviation / self.stats.stddev

    def observe(self, value: float) -> float:
        """Score first, then absorb the value into the baseline."""
        result = self.score(value)
        self.stats.add(value)
        if result >= self.threshold:
            self.anomalies += 1
        return result

    def is_anomaly(self, value: float) -> bool:
        return self.observe(value) >= self.threshold


@dataclass
class QueryScore:
    """Value assessment of one candidate continuous query."""

    name: str
    alerts: int
    hits: int
    precision: float
    recall: float
    mean_detection_delay: float | None
    value: float


@dataclass
class _Candidate:
    name: str
    alert_times: list[float] = field(default_factory=list)
    # Incremental scoring state, maintained per alert: total hits and,
    # per covered episode, the earliest alert that hit it (which is the
    # alert the sorted-order recompute attributes the delay to).
    hits: int = 0
    first_hit: dict[float, float] = field(default_factory=dict)


class QueryValueScorer:
    """Scores candidate queries against ground-truth critical episodes.

    An alert *hits* an episode when it falls inside
    ``[episode, episode + tolerance]``.  The value score is the F1 of
    precision/recall discounted by normalized detection delay — a query
    that fires precisely, covers every episode, and fires early is
    maximally valuable; a chatty or blind query scores near zero.

    Scoring is delta-maintained: each ``record_alert`` updates the
    candidate's running precision/recall/delay state in O(log truth)
    (one bisect), so :meth:`scores` is O(candidates) instead of
    rescanning every alert against every episode.  ``recompute=True``
    keeps the full O(alerts x episodes) rescan — the equivalence-test
    escape hatch.
    """

    def __init__(
        self,
        truth: Iterable[float],
        *,
        tolerance: float = 60.0,
        recompute: bool = False,
    ) -> None:
        self.truth = sorted(truth)
        self.tolerance = tolerance
        self.recompute = bool(recompute)
        self._candidates: dict[str, _Candidate] = {}

    def record_alert(self, query_name: str, timestamp: float) -> None:
        candidate = self._candidates.setdefault(
            query_name, _Candidate(query_name)
        )
        candidate.alert_times.append(timestamp)
        # Delta update: the episode this alert hits is the first one at
        # or after (alert - tolerance) — the same episode the sorted
        # rescan in _score_one would pick.
        truth = self.truth
        index = bisect_left(truth, timestamp - self.tolerance)
        if index < len(truth) and truth[index] <= timestamp:
            episode = truth[index]
            candidate.hits += 1
            earliest = candidate.first_hit.get(episode)
            if earliest is None or timestamp < earliest:
                candidate.first_hit[episode] = timestamp

    def register(self, query_name: str) -> None:
        """Make a candidate known even before (or without) any alert —
        a query that never fires must appear in the ranking with zero
        value rather than silently vanish."""
        self._candidates.setdefault(query_name, _Candidate(query_name))

    def attach(self, query: "object") -> None:
        """Subscribe to a ContinuousQuery's output stream."""
        name = query.name  # type: ignore[attr-defined]
        self.register(name)
        query.sink(  # type: ignore[attr-defined]
            lambda event: self.record_alert(name, event.timestamp)
        )

    def _score_one(self, candidate: _Candidate) -> QueryScore:
        alerts = sorted(candidate.alert_times)
        hits = 0
        covered: set[float] = set()
        delays: list[float] = []
        for alert in alerts:
            matched = None
            for episode in self.truth:
                if episode <= alert <= episode + self.tolerance:
                    matched = episode
                    break
            if matched is not None:
                hits += 1
                if matched not in covered:
                    covered.add(matched)
                    delays.append(alert - matched)
        return self._combine(
            candidate.name, len(alerts), hits, len(covered), sum(delays)
        )

    def _combine(
        self,
        name: str,
        alerts: int,
        hits: int,
        covered: int,
        delay_total: float,
    ) -> QueryScore:
        precision = hits / alerts if alerts else 0.0
        recall = covered / len(self.truth) if self.truth else 0.0
        if precision + recall > 0:
            f1 = 2 * precision * recall / (precision + recall)
        else:
            f1 = 0.0
        mean_delay = delay_total / covered if covered else None
        timeliness = (
            1.0 - (mean_delay / self.tolerance) if mean_delay is not None else 0.0
        )
        value = f1 * (0.5 + 0.5 * max(0.0, timeliness))
        return QueryScore(
            name=name,
            alerts=alerts,
            hits=hits,
            precision=precision,
            recall=recall,
            mean_detection_delay=mean_delay,
            value=value,
        )

    def _score_incremental(self, candidate: _Candidate) -> QueryScore:
        delay_total = sum(
            alert - episode for episode, alert in candidate.first_hit.items()
        )
        return self._combine(
            candidate.name,
            len(candidate.alert_times),
            candidate.hits,
            len(candidate.first_hit),
            delay_total,
        )

    def scores(self) -> list[QueryScore]:
        """All candidates, most valuable first."""
        score_one = self._score_one if self.recompute else self._score_incremental
        return sorted(
            (score_one(c) for c in self._candidates.values()),
            key=lambda score: -score.value,
        )

    def top(self, k: int) -> list[QueryScore]:
        """The k most valuable queries — what an operator would deploy."""
        return self.scores()[:k]
