"""Incremental view maintenance: delta-processed materialized views.

The recompute-per-event analytics path costs O(window) per arrival.
DBToaster's observation (Ahmad et al., PVLDB 2012) is that a
materialized aggregate can instead absorb each change as a *delta* —
and batching those deltas (Nikolic et al., SIGMOD 2016) turns N source
events into ONE view update, amortizing per-update overhead the same
way the queue layer's ``enqueue_batch`` amortizes commit cost.

:class:`MaterializedView` is that layer for this platform:

* **Table-backed**: ``bind_table`` registers against a database's
  committed journal (the same cursor journal-based event capture uses),
  so every commit folds its DML — insert/delete/update row images —
  into the view as one delta batch.  The view is synchronized with
  transaction boundaries for free: aborted work never reaches it.
* **Stream-backed**: ``bind_stream`` buffers a push stream and folds
  every ``batch_size`` events in one update; ``apply_batch`` is the
  direct entry point the batch capture path can call.

Per-row work — predicate test, group-key extraction, one value per
aggregate — is lowered to a single closure by
:func:`repro.db.expr.compile_delta_update`, exactly how the rule engine
compiles predicates.  Aggregates whose :attr:`incremental` flag is
False (e.g. ``First``), and views built with ``recompute=True`` (the
equivalence-testing escape hatch), retain raw values and refold on
read; everything else applies deltas in O(1)–O(log n) and never
revisits source data.  ``snapshot()`` returns the group results plus
freshness metadata, and bound ``MetricsRegistry`` instruments count
deltas applied, batches folded, and refold fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.cq.aggregate import AggregateFunction
from repro.cq.stream import Stream
from repro.db.expr import ColumnRef, Expression, Literal, compile_delta_update
from repro.errors import StreamError
from repro.events import KIND_PUNCTUATION, KIND_RETRACTION, Event
from repro.obs.metrics import NULL_COUNTER

#: Event type emitted on a view's opt-in :meth:`MaterializedView.changes`
#: stream: one retraction of the group's previous result followed by the
#: new result, per group touched by a fold.
VIEW_CHANGE_EVENT_TYPE = "view.change"

# (output name) -> (source, factory).  ``source`` may be a payload/column
# name, ``None`` (count rows), or any Expression over the row.
ViewSpec = dict[str, "tuple[str | Expression | None, Callable[[], AggregateFunction]]"]


class _RowContext(dict):
    """Row view where absent columns read as SQL NULL.

    Events and journal rows routinely lack fields a view extracts; in
    SQL terms those are NULL and the aggregate simply skips them — the
    same convention as ``WindowPane.values`` and rule evaluation.
    """

    def __contains__(self, key: object) -> bool:  # noqa: D105
        return True

    def __missing__(self, key: str) -> None:
        return None


@dataclass(frozen=True)
class ViewSnapshot:
    """Point-in-time view contents plus freshness metadata."""

    name: str
    groups: dict[Any, dict[str, Any]]
    #: Journal position the view has folded up to (table-backed only).
    last_lsn: int | None
    #: Event time of the newest delta folded in (stream-backed only).
    last_timestamp: float | None
    deltas_applied: int
    batches_folded: int
    refolds: int
    #: Bumped once per fold — equal versions mean identical contents.
    version: int
    #: Deltas applied with sign −1 (retraction events folded).
    retractions_applied: int = 0


class MaterializedView:
    """A delta-maintained aggregate view over a table or a stream."""

    def __init__(
        self,
        name: str,
        spec: ViewSpec,
        *,
        key_field: str | None = None,
        predicate: Expression | None = None,
        recompute: bool = False,
        metrics: Any = None,
    ) -> None:
        if not spec:
            raise StreamError(f"view {name!r} needs at least one aggregate")
        self.name = name
        self.key_field = key_field
        self.predicate = predicate
        self._factories: dict[str, Callable[[], AggregateFunction]] = {}
        extractors: dict[str, Expression] = {}
        incremental = True
        for output, (source, factory) in spec.items():
            self._factories[output] = factory
            if source is None:
                extractors[output] = Literal(1)
            elif isinstance(source, Expression):
                extractors[output] = source
            else:
                extractors[output] = ColumnRef(source)
            if not factory().incremental:
                incremental = False
        # recompute=True retains raw values and refolds on every read —
        # the full-recompute baseline the equivalence suite compares
        # delta state against.  Non-incremental aggregates force the
        # same retained mode (they cannot retract).
        self.recompute = bool(recompute)
        self._delta_capable = incremental and not self.recompute
        self._delta_fn = compile_delta_update(
            extractors,
            predicate,
            ColumnRef(key_field) if key_field else None,
        )
        # Delta mode: group key -> {output: aggregate instance}.
        self._groups: dict[Any, dict[str, AggregateFunction]] = {}
        self._group_rows: dict[Any, int] = {}
        # Retained mode: group key -> list of extracted value dicts.
        self._retained: dict[Any, list[dict[str, Any]]] = {}
        self._deltas_applied = 0
        self._batches_folded = 0
        self._refolds = 0
        self._retractions_applied = 0
        self._changes: Stream | None = None
        self._version = 0
        self._last_lsn: int | None = None
        self._last_timestamp: float | None = None
        self._reader: Any = None
        self._table: str | None = None
        self._stream_buffer: list[Event] = []
        self._batch_size = 1
        self._m_deltas = NULL_COUNTER
        self._m_batches = NULL_COUNTER
        self._m_refolds = NULL_COUNTER
        self._m_retractions = NULL_COUNTER
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: Any) -> "MaterializedView":
        self._m_deltas = metrics.counter("view.deltas_applied", view=self.name)
        self._m_batches = metrics.counter("view.batches_folded", view=self.name)
        self._m_refolds = metrics.counter("view.refolds", view=self.name)
        self._m_retractions = metrics.counter(
            "view.retractions_applied", view=self.name
        )
        return self

    # -- input bindings ------------------------------------------------------

    def bind_table(
        self,
        db: Any,
        table_name: str,
        *,
        start_lsn: int = 0,
        snapshot: Iterable[Mapping[str, Any]] | None = None,
    ) -> "MaterializedView":
        """Maintain this view over a table's committed DML.

        Backfills by replaying the committed journal from ``start_lsn``
        (default 0: the whole history), then folds each later commit's
        records as one delta batch.  A checkpointed database whose
        journal prefix was truncated cannot replay from 0 — pass the
        table's checkpoint state as ``snapshot`` (row mappings, folded
        as inserts) together with the ``start_lsn`` the snapshot is
        current to, and replay resumes from there.

        Raises:
            StreamError: the journal no longer reaches back to
                ``start_lsn`` (records after it were truncated away),
                which would silently produce a view missing history.
        """
        if self._reader is not None:
            raise StreamError(f"view {self.name!r} is already table-bound")
        if start_lsn < 0:
            raise StreamError("start_lsn must be >= 0")
        first_retained = db.wal.first_lsn
        if start_lsn + 1 < first_retained:
            raise StreamError(
                f"view {self.name!r}: journal for table {table_name!r} no "
                f"longer reaches back to LSN {start_lsn} — records before "
                f"LSN {first_retained} were truncated (checkpoint log "
                f"reclaim).  Re-bind with a checkpoint snapshot of the "
                f"table and start_lsn >= {first_retained - 1}."
            )
        self._table = table_name.lower()
        if snapshot is not None:
            applied = self._apply_insert_batch(snapshot)
            if applied:
                self._deltas_applied += applied
                self._m_deltas.inc(applied)
                self._batches_folded += 1
                self._m_batches.inc()
                self._version += 1
        self._reader = db.journal_reader(start_lsn)
        backfill = self._reader.poll()
        if backfill:
            self._fold_records(backfill)
        self._last_lsn = self._reader.position
        db.add_commit_listener(self._on_commit)
        return self

    def _on_commit(self, _transaction: Any) -> None:
        records = self._reader.poll()
        if records:
            self._fold_records(records)
        self._last_lsn = self._reader.position

    def _fold_records(self, records: Iterable[Any]) -> None:
        applied = 0
        # Runs of consecutive inserts (the common shape: bulk loads,
        # append-mostly tables) fold as one batch; retractions flush
        # the run first so per-group arrival order is preserved.
        inserts: list[Any] = []

        def flush_inserts() -> None:
            if inserts:
                self._apply_insert_batch(inserts)
                inserts.clear()

        for record in records:
            if record.table != self._table:
                continue
            if record.op == "insert":
                inserts.append(record.after)
            elif record.op == "delete":
                flush_inserts()
                self._apply(record.before, -1)
            elif record.op == "update":
                flush_inserts()
                self._apply(record.before, -1)
                self._apply(record.after, +1)
            else:
                continue
            applied += 1
        flush_inserts()
        if applied:
            self._deltas_applied += applied
            self._m_deltas.inc(applied)
            self._batches_folded += 1
            self._m_batches.inc()
            self._version += 1

    def bind_stream(
        self, stream: Stream, *, batch_size: int = 64
    ) -> "MaterializedView":
        """Maintain this view over a push stream, folding every
        ``batch_size`` events as one delta batch (call :meth:`flush`
        at end of stream / epoch)."""
        if batch_size <= 0:
            raise StreamError("batch_size must be positive")
        self._batch_size = batch_size
        stream.subscribe(self._on_event)
        return self

    def _on_event(self, event: Event) -> None:
        if event.kind == KIND_PUNCTUATION:
            # A watermark is an epoch boundary: everything buffered is
            # complete below it, so fold now rather than waiting for
            # the batch to fill.
            self.flush()
            return
        self._stream_buffer.append(event)
        if len(self._stream_buffer) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        """Fold any buffered stream events now."""
        if self._stream_buffer:
            batch, self._stream_buffer = self._stream_buffer, []
            self.apply_batch(batch)

    def changes(self) -> Stream:
        """Opt-in change stream (the view's own speculative output).

        After each stream-batch fold, every touched group emits a
        retraction (``kind="retraction"``) carrying its previous result
        followed by its new result — only the new result at group
        birth, only the retraction at group death.  Downstream views
        and operators consume it with the same retraction contract the
        window layer uses.  Costs one extra delta-fn evaluation per
        row, so nothing is paid until this is called.
        """
        if self._changes is None:
            self._changes = Stream(f"view({self.name}).changes")
        return self._changes

    def apply_batch(self, events: Iterable[Event]) -> int:
        """Fold a batch of events as ONE view update; returns the
        number of deltas applied (rows passing the view predicate).

        Kind-aware: data events fold with sign +1 (consecutive runs as
        one batch), retraction events with sign −1 via the incremental
        ``remove()`` contract; punctuation carries no rows and is
        skipped.  Order within the batch is preserved, so a result and
        its later retraction cancel exactly.
        """
        events = list(events)
        old_results = self._snapshot_touched(events)
        applied = 0
        inserts: list[_RowContext] = []

        def flush_inserts() -> None:
            nonlocal applied
            if inserts:
                applied += self._apply_insert_batch(inserts)
                inserts.clear()

        for event in events:
            if event.kind == KIND_PUNCTUATION:
                continue
            row = _RowContext(event.payload)
            row.setdefault("event_type", event.event_type)
            row.setdefault("timestamp", event.timestamp)
            if event.kind == KIND_RETRACTION:
                flush_inserts()
                if self._apply(row, -1):
                    applied += 1
                    self._retractions_applied += 1
                    self._m_retractions.inc()
            else:
                inserts.append(row)
            if (
                self._last_timestamp is None
                or event.timestamp > self._last_timestamp
            ):
                self._last_timestamp = event.timestamp
        flush_inserts()
        if applied:
            self._deltas_applied += applied
            self._m_deltas.inc(applied)
        self._batches_folded += 1
        self._m_batches.inc()
        self._version += 1
        if old_results is not None:
            self._emit_changes(old_results)
        return applied

    def _snapshot_touched(
        self, events: list[Event]
    ) -> dict[Any, dict[str, Any] | None] | None:
        """Pre-fold results of every group this batch will touch (only
        when the change stream is active)."""
        if self._changes is None:
            return None
        old_results: dict[Any, dict[str, Any] | None] = {}
        for event in events:
            if event.kind == KIND_PUNCTUATION:
                continue
            row = _RowContext(event.payload)
            row.setdefault("event_type", event.event_type)
            row.setdefault("timestamp", event.timestamp)
            delta = self._delta_fn(row)
            if delta is None:
                continue
            key = delta[0]
            if key not in old_results:
                old_results[key] = self.group(key)
        return old_results

    def _emit_changes(
        self, old_results: dict[Any, dict[str, Any] | None]
    ) -> None:
        changes = self._changes
        timestamp = self._last_timestamp or 0.0
        for key, old in old_results.items():
            new = self.group(key)
            if old == new:
                continue  # the batch's deltas cancelled out
            if old is not None:
                changes.push(
                    Event(
                        event_type=VIEW_CHANGE_EVENT_TYPE,
                        timestamp=timestamp,
                        payload={"view": self.name, "key": key, **old},
                        source=self.name,
                        kind=KIND_RETRACTION,
                    )
                )
            if new is not None:
                changes.push(
                    Event(
                        event_type=VIEW_CHANGE_EVENT_TYPE,
                        timestamp=timestamp,
                        payload={"view": self.name, "key": key, **new},
                        source=self.name,
                    )
                )

    # -- delta application ---------------------------------------------------

    def _apply_insert_batch(
        self, rows: Iterable[Mapping[str, Any] | None]
    ) -> int:
        """Fold many +1 rows as one batch: rows group by view key and
        each aggregate absorbs its per-group values via ``add_batch``
        (one call per aggregate per group instead of one per row).
        Per-group arrival order is preserved, so order-sensitive float
        states stay identical to per-row application.  Returns the
        number of rows that passed the view predicate; counters are the
        caller's responsibility (entry points differ in what they
        count)."""
        by_key: dict[Any, list[dict[str, Any]]] = {}
        applied = 0
        for row in rows:
            if row is None:
                continue
            if not isinstance(row, _RowContext):
                row = _RowContext(row)
            delta = self._delta_fn(row)
            if delta is None:
                continue
            key, values = delta
            by_key.setdefault(key, []).append(values)
            applied += 1
        if not applied:
            return 0
        if not self._delta_capable:
            for key, values_list in by_key.items():
                self._retained.setdefault(key, []).extend(values_list)
            return applied
        for key, values_list in by_key.items():
            group = self._groups.get(key)
            if group is None:
                group = {
                    output: factory()
                    for output, factory in self._factories.items()
                }
                self._groups[key] = group
                self._group_rows[key] = 0
            for output, fn in group.items():
                batch = [
                    values[output]
                    for values in values_list
                    if values[output] is not None
                ]
                if batch:
                    fn.add_batch(batch)
            self._group_rows[key] += len(values_list)
        return applied

    def _apply(self, row: Mapping[str, Any] | None, sign: int) -> bool:
        if row is None:
            return False
        if not isinstance(row, _RowContext):
            row = _RowContext(row)
        delta = self._delta_fn(row)
        if delta is None:
            return False
        key, values = delta
        if not self._delta_capable:
            bucket = self._retained.setdefault(key, [])
            if sign > 0:
                bucket.append(values)
            else:
                try:
                    bucket.remove(values)
                except ValueError:
                    raise StreamError(
                        f"view {self.name!r}: retraction of a row never added"
                    ) from None
                if not bucket:
                    del self._retained[key]
            return True
        group = self._groups.get(key)
        if sign > 0:
            if group is None:
                group = {
                    output: factory()
                    for output, factory in self._factories.items()
                }
                self._groups[key] = group
                self._group_rows[key] = 0
            for output, fn in group.items():
                value = values[output]
                if value is not None:
                    fn.add(value)
            self._group_rows[key] += 1
        else:
            if group is None:
                raise StreamError(
                    f"view {self.name!r}: retraction of a row never added"
                )
            for output, fn in group.items():
                value = values[output]
                if value is not None:
                    fn.remove(value)
            self._group_rows[key] -= 1
            if self._group_rows[key] <= 0:
                del self._groups[key]
                del self._group_rows[key]
        return True

    def _refold_group(self, rows: list[dict[str, Any]]) -> dict[str, Any]:
        result: dict[str, Any] = {}
        for output, factory in self._factories.items():
            fn = factory()
            fn.add_batch(
                [values[output] for values in rows if values[output] is not None]
            )
            result[output] = fn.result()
        return result

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> ViewSnapshot:
        """Current view contents plus freshness metadata.

        Delta-capable views read group results in O(groups x aggs);
        retained-mode views refold each group here (counted in
        ``refolds``).
        """
        if self._delta_capable:
            groups = {
                key: {output: fn.result() for output, fn in group.items()}
                for key, group in self._groups.items()
            }
        else:
            groups = {
                key: self._refold_group(rows)
                for key, rows in self._retained.items()
            }
            if groups:
                self._refolds += len(groups)
                self._m_refolds.inc(len(groups))
        return ViewSnapshot(
            name=self.name,
            groups=groups,
            last_lsn=self._last_lsn,
            last_timestamp=self._last_timestamp,
            deltas_applied=self._deltas_applied,
            batches_folded=self._batches_folded,
            refolds=self._refolds,
            version=self._version,
            retractions_applied=self._retractions_applied,
        )

    def group(self, key: Any = None) -> dict[str, Any] | None:
        """One group's current results (None when the group is empty)."""
        if self._delta_capable:
            group = self._groups.get(key)
            if group is None:
                return None
            return {output: fn.result() for output, fn in group.items()}
        rows = self._retained.get(key)
        if rows is None:
            return None
        self._refolds += 1
        self._m_refolds.inc()
        return self._refold_group(rows)

    def __len__(self) -> int:
        return len(self._groups if self._delta_capable else self._retained)
