"""Window operators: tumbling, sliding, count, session.

Windows segment a stream by *event time* (the event's own timestamp,
not arrival time).  A window operator collects events into panes and
emits each completed :class:`WindowPane` to its subscribers wrapped in
a ``window.pane`` event whose payload holds the pane.

Event time advances two ways (the CEDR separation of application time
from system time — Barga et al., CIDR 2007): by *progress* (every data
event's own timestamp, the stream norm) and by *watermark punctuation*
(``Event.kind == "punctuation"``), which promises no further data
below the carried watermark and lets windows close without seeing
data.  ``allowed_lateness`` tolerates bounded disorder below the
watermark; anything later is dropped and counted in ``late_dropped``
(and the ``cq.late_dropped`` metric) — an honest accounting the tests
assert on.

Each operator offers the CEDR consistency spectrum via ``output_mode``:

* ``"blocking"`` (default): a pane is emitted exactly once, only when
  the watermark has passed its end *plus* the lateness allowance — no
  result is ever revised.  Highest latency, no compensation needed.
* ``"speculative"``: a pane is emitted eagerly as soon as the
  watermark passes its end.  If a late-but-within-lateness event then
  revises it, the operator emits a *retraction* (``kind ==
  "retraction"``, carrying the pane identity as previously emitted)
  followed by the corrected pane.  Once the watermark passes
  ``end + allowed_lateness`` the last emission stands and pane state
  is released.  Invariant: ``emissions − retractions`` equals what
  blocking mode would have emitted.

``flush()`` is *terminal*: it advances the watermark to +inf, emitting
every open pane exactly once; events processed after a flush count as
late drops instead of silently re-opening already-emitted panes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cq.stream import Operator, Stream
from repro.errors import WindowError
from repro.events import KIND_RETRACTION, Event
from repro.obs.metrics import NULL_COUNTER, NULL_HISTOGRAM

PANE_EVENT_TYPE = "window.pane"

#: Emit once, only below the lateness horizon (never revised).
OUTPUT_BLOCKING = "blocking"
#: Emit eagerly at the watermark; retract + re-emit on revision.
OUTPUT_SPECULATIVE = "speculative"

_OUTPUT_MODES = (OUTPUT_BLOCKING, OUTPUT_SPECULATIVE)


@dataclass
class WindowPane:
    """One completed window: its bounds, key, and contents."""

    start: float
    end: float
    events: list[Event] = field(default_factory=list)
    key: Any = None

    def __len__(self) -> int:
        return len(self.events)

    def values(self, field_name: str) -> list[Any]:
        """Extract one payload field from every event (None-skipping)."""
        result = []
        for event in self.events:
            value = event.get(field_name)
            if value is not None:
                result.append(value)
        return result


# Observer called as ``observer(pane, event)`` right after ``event`` is
# appended to ``pane`` — the delta-processing hook: a downstream
# consumer (e.g. WindowAggregate in delta mode) folds each event into
# per-pane aggregate state as it arrives instead of refolding the whole
# pane at close.
PaneObserver = Callable[[WindowPane, Event], None]

# Observer called as ``observer(pane)`` when the operator drops its last
# reference to a pane — final emission, silent speculative finalization,
# or a session merge absorbing it.  Downstream per-pane state (delta
# aggregates, remembered speculative results) is released here, which
# matters because speculative panes finalize *silently* once the
# lateness horizon passes their last emission.
PaneRetireObserver = Callable[[WindowPane], None]


class WindowOperator(Operator):
    """Base for window operators: pane bookkeeping, append hooks,
    watermark/lateness accounting, and the retraction machinery."""

    def __init__(
        self,
        name: str,
        upstream: Stream,
        *,
        allowed_lateness: float = 0.0,
        output_mode: str = OUTPUT_BLOCKING,
    ) -> None:
        super().__init__(name, upstream)
        if allowed_lateness < 0:
            raise WindowError("allowed_lateness must be >= 0")
        if output_mode not in _OUTPUT_MODES:
            raise WindowError(
                f"output_mode must be one of {_OUTPUT_MODES}, "
                f"got {output_mode!r}"
            )
        self.allowed_lateness = allowed_lateness
        self.output_mode = output_mode
        self._watermark = float("-inf")
        self.late_dropped = 0
        self.retractions_emitted = 0
        #: Upstream retractions a window cannot compensate (it would
        #: need to un-append from arbitrary panes); dropped and counted.
        self.retractions_dropped = 0
        self._pane_observers: list[PaneObserver] = []
        self._retire_observers: list[PaneRetireObserver] = []
        self._m_late = NULL_COUNTER
        self._m_retractions = NULL_COUNTER
        self._m_lateness = NULL_HISTOGRAM

    # -- observability -------------------------------------------------------

    def bind_metrics(self, metrics: Any) -> "WindowOperator":
        super().bind_metrics(metrics)
        self._m_late = metrics.counter("cq.late_dropped", stream=self.name)
        self._m_retractions = metrics.counter(
            "cq.retractions_emitted", stream=self.name
        )
        self._m_lateness = metrics.histogram("cq.lateness", stream=self.name)
        # Carry pre-binding counts into the registry, like Stream does
        # with events_in/out, so a late bind loses nothing.
        if self.late_dropped:
            self._m_late.inc(self.late_dropped)
        if self.retractions_emitted:
            self._m_retractions.inc(self.retractions_emitted)
        return self

    # -- event-time plumbing -------------------------------------------------

    @property
    def watermark(self) -> float:
        """Current event-time watermark (max of progress and punctuation)."""
        return self._watermark

    @property
    def horizon(self) -> float:
        """Finality horizon: results at or below ``watermark −
        allowed_lateness`` can no longer be revised."""
        return self._watermark - self.allowed_lateness

    def _too_late(self, timestamp: float) -> bool:
        """Drop-and-count guard, shared by every window type.

        Also feeds the lateness histogram for *every* event behind the
        watermark (accepted or dropped), so disorder magnitude is
        observable even when nothing is lost.
        """
        if timestamp >= self._watermark:
            return False
        lateness = self._watermark - timestamp
        if not math.isinf(lateness):
            self._m_lateness.observe(lateness)
        if timestamp < self.horizon:
            self.late_dropped += 1
            self._m_late.inc()
            return True
        return False

    def on_punctuation(self, event: Event) -> None:
        """Advance event time from a watermark punctuation, emit every
        pane that advance completes, then forward the punctuation
        (stamped with this operator's finality horizon so downstream
        compensation state can be released)."""
        watermark = event.get("watermark", event.timestamp)
        if watermark > self._watermark:
            self._watermark = watermark
            self._sweep()
        self.emit(event.with_payload(horizon=self.horizon))

    def on_retraction(self, event: Event) -> None:
        self.retractions_dropped += 1

    def flush(self) -> None:
        """Terminal end-of-stream: advance the watermark to +inf.

        Every open pane is emitted exactly once (as final); events
        processed afterwards are late by definition and are dropped and
        counted instead of re-opening already-emitted panes.
        """
        if self._watermark != float("inf"):
            self._watermark = float("inf")
            self._sweep()

    def _advance(self, timestamp: float) -> None:
        self._watermark = max(self._watermark, timestamp)
        self._sweep()

    def _sweep(self) -> None:
        """Emit/finalize panes the current watermark has passed."""
        raise NotImplementedError

    # -- pane plumbing -------------------------------------------------------

    def attach_pane_observer(self, observer: PaneObserver) -> None:
        """Register a per-append callback (the IVM delta feed)."""
        self._pane_observers.append(observer)

    def attach_pane_retire_observer(
        self, observer: PaneRetireObserver
    ) -> None:
        """Register an end-of-pane-lifetime callback."""
        self._retire_observers.append(observer)

    def _append(self, pane: WindowPane, event: Event) -> None:
        pane.events.append(event)
        for observer in self._pane_observers:
            observer(pane, event)

    def _retire(self, pane: WindowPane) -> None:
        for observer in self._retire_observers:
            observer(pane)

    def _emit_pane(
        self, pane: WindowPane, *, final: bool, revision: int = 0
    ) -> None:
        self.emit(
            Event(
                event_type=PANE_EVENT_TYPE,
                timestamp=pane.end,
                payload={
                    "pane": pane,
                    "start": pane.start,
                    "end": pane.end,
                    "key": pane.key,
                    "final": final,
                    "revision": revision,
                    "horizon": self.horizon,
                },
                source=self.name,
            )
        )

    def _emit_retraction(
        self,
        pane: WindowPane,
        *,
        revision: int,
        start: float | None = None,
        end: float | None = None,
    ) -> None:
        """Retract a previously emitted pane.

        ``start``/``end`` override the identity carried in the payload
        for panes whose bounds have since moved (session extension) —
        the retraction must name the pane *as it was emitted*.
        """
        self.retractions_emitted += 1
        self._m_retractions.inc()
        self.emit(
            Event(
                event_type=PANE_EVENT_TYPE,
                timestamp=pane.end if end is None else end,
                payload={
                    "pane": pane,
                    "start": pane.start if start is None else start,
                    "end": pane.end if end is None else end,
                    "key": pane.key,
                    "revision": revision,
                    "horizon": self.horizon,
                },
                source=self.name,
                kind=KIND_RETRACTION,
            )
        )


class _TimeWindow(WindowOperator):
    """Shared machinery for tumbling/sliding windows: fixed pane bounds
    keyed by ``(key, start)``, watermark-driven close, speculative
    revision of already-emitted panes."""

    size: float

    def __init__(
        self,
        name: str,
        upstream: Stream,
        *,
        key_field: str | None,
        allowed_lateness: float,
        output_mode: str,
    ) -> None:
        super().__init__(
            name,
            upstream,
            allowed_lateness=allowed_lateness,
            output_mode=output_mode,
        )
        self.key_field = key_field
        # Open panes (never emitted): (key, start) -> pane.
        self._panes: dict[tuple[Any, float], WindowPane] = {}
        # Speculatively emitted, still revisable: (key, start) ->
        # [pane, revision].
        self._emitted: dict[tuple[Any, float], list[Any]] = {}

    def _key(self, event: Event) -> Any:
        return event.get(self.key_field) if self.key_field else None

    def _starts(self, timestamp: float) -> list[float]:
        raise NotImplementedError

    def process(self, event: Event) -> None:
        timestamp = event.timestamp
        if self._too_late(timestamp):
            return
        key = self._key(event)
        for start in self._starts(timestamp):
            self._assign(event, key, start)
        self._advance(timestamp)

    def _assign(self, event: Event, key: Any, start: float) -> None:
        ident = (key, start)
        entry = self._emitted.get(ident)
        if entry is not None:
            # Late event revising an already-emitted pane: compensate,
            # fold, re-emit — the speculative output contract.
            pane, revision = entry
            self._emit_retraction(pane, revision=revision)
            self._append(pane, event)
            entry[1] = revision + 1
            self._emit_pane(pane, final=False, revision=revision + 1)
            return
        pane = self._panes.get(ident)
        if pane is None:
            pane = WindowPane(start=start, end=start + self.size, key=key)
            self._panes[ident] = pane
        self._append(pane, event)

    def _sweep(self) -> None:
        watermark, horizon = self._watermark, self.horizon
        if self.output_mode == OUTPUT_BLOCKING:
            ready = [
                ident for ident, pane in self._panes.items()
                if pane.end <= horizon
            ]
            for ident in sorted(ready, key=lambda item: item[1]):
                pane = self._panes.pop(ident)
                self._emit_pane(pane, final=True)
                self._retire(pane)
            return
        ready = [
            ident for ident, pane in self._panes.items()
            if pane.end <= watermark
        ]
        for ident in sorted(ready, key=lambda item: item[1]):
            pane = self._panes.pop(ident)
            if pane.end <= horizon:
                self._emit_pane(pane, final=True)
                self._retire(pane)
            else:
                self._emitted[ident] = [pane, 0]
                self._emit_pane(pane, final=False, revision=0)
        # Speculative panes past the horizon can no longer be revised:
        # their last emission stands; release the state.
        for ident in [
            ident for ident, (pane, _rev) in self._emitted.items()
            if pane.end <= horizon
        ]:
            pane, _revision = self._emitted.pop(ident)
            self._retire(pane)


class TumblingWindow(_TimeWindow):
    """Fixed, non-overlapping windows of ``size`` seconds, aligned to
    multiples of ``size`` — optionally partitioned by ``key_field``."""

    def __init__(
        self,
        upstream: Stream,
        size: float,
        *,
        key_field: str | None = None,
        allowed_lateness: float = 0.0,
        output_mode: str = OUTPUT_BLOCKING,
        name: str | None = None,
    ) -> None:
        if size <= 0:
            raise WindowError("window size must be positive")
        super().__init__(
            name or f"tumbling({size})",
            upstream,
            key_field=key_field,
            allowed_lateness=allowed_lateness,
            output_mode=output_mode,
        )
        self.size = size

    def _starts(self, timestamp: float) -> list[float]:
        return [(timestamp // self.size) * self.size]


class SlidingWindow(_TimeWindow):
    """Overlapping windows: ``size`` seconds every ``slide`` seconds.

    Each event lands in ``ceil(size / slide)`` panes.
    """

    def __init__(
        self,
        upstream: Stream,
        size: float,
        slide: float,
        *,
        key_field: str | None = None,
        allowed_lateness: float = 0.0,
        output_mode: str = OUTPUT_BLOCKING,
        name: str | None = None,
    ) -> None:
        if size <= 0 or slide <= 0:
            raise WindowError("window size and slide must be positive")
        if slide > size:
            raise WindowError(
                "slide larger than size leaves gaps; use a tumbling window"
            )
        super().__init__(
            name or f"sliding({size},{slide})",
            upstream,
            key_field=key_field,
            allowed_lateness=allowed_lateness,
            output_mode=output_mode,
        )
        self.size = size
        self.slide = slide

    def _starts(self, timestamp: float) -> list[float]:
        # Pane starts are the multiples of slide in (ts - size, ts].
        starts = []
        start = ((timestamp - self.size) // self.slide + 1) * self.slide
        while start <= timestamp:
            if timestamp < start + self.size:
                starts.append(start)
            start += self.slide
        return starts


class CountWindow(WindowOperator):
    """Every ``count`` events forms a pane (optionally per key).

    Panes are built eagerly (an open pane per key from its first event)
    so pane observers see each append — the delta path needs the pane to
    exist while it fills, not only at close.  Count windows have no
    event-time semantics: arrival order is the only order, so there is
    no watermark, no lateness, and no speculative mode.
    """

    def __init__(
        self,
        upstream: Stream,
        count: int,
        *,
        key_field: str | None = None,
        name: str | None = None,
    ) -> None:
        if count <= 0:
            raise WindowError("count must be positive")
        super().__init__(name or f"count({count})", upstream)
        self.count = count
        self.key_field = key_field
        self._panes: dict[Any, WindowPane] = {}

    def process(self, event: Event) -> None:
        key = event.get(self.key_field) if self.key_field else None
        pane = self._panes.get(key)
        if pane is None:
            pane = WindowPane(
                start=event.timestamp, end=event.timestamp, key=key
            )
            self._panes[key] = pane
        self._append(pane, event)
        pane.end = event.timestamp
        if len(pane.events) >= self.count:
            del self._panes[key]
            self._emit_pane(pane, final=True)
            self._retire(pane)

    def _sweep(self) -> None:  # no event-time machinery
        return

    def flush(self) -> None:
        for key in list(self._panes):
            pane = self._panes.pop(key)
            if pane.events:
                self._emit_pane(pane, final=True)
            self._retire(pane)


class SessionWindow(WindowOperator):
    """Activity sessions: a pane closes after ``gap`` seconds of
    silence (per key).

    Under disorder, a late event may extend a session backwards, or
    *bridge* two proto-sessions into one — so the operator keeps a list
    of open sessions per key and merges on contact.  The lateness guard
    is identical to tumbling/sliding (this unification is the fix for
    the double-emit bug where a very late event silently re-opened an
    already-emitted session).
    """

    def __init__(
        self,
        upstream: Stream,
        gap: float,
        *,
        key_field: str | None = None,
        allowed_lateness: float = 0.0,
        output_mode: str = OUTPUT_BLOCKING,
        name: str | None = None,
    ) -> None:
        if gap <= 0:
            raise WindowError("session gap must be positive")
        super().__init__(
            name or f"session({gap})",
            upstream,
            allowed_lateness=allowed_lateness,
            output_mode=output_mode,
        )
        self.gap = gap
        self.key_field = key_field
        # Open sessions per key (plural: disorder can create disjoint
        # proto-sessions that a later bridge event merges).
        self._sessions: dict[Any, list[WindowPane]] = {}
        # Speculatively emitted sessions per key: [pane, revision].
        self._emitted: dict[Any, list[list[Any]]] = {}
        # Pane -> next revision number, for sessions revised back open.
        self._revised: dict[int, int] = {}

    def _touches(self, pane: WindowPane, timestamp: float) -> bool:
        return pane.start - self.gap <= timestamp <= pane.end + self.gap

    def process(self, event: Event) -> None:
        timestamp = event.timestamp
        if self._too_late(timestamp):
            return
        key = event.get(self.key_field) if self.key_field else None
        self._assign(event, key)
        self._advance(timestamp)

    def _assign(self, event: Event, key: Any) -> None:
        timestamp = event.timestamp
        open_list = self._sessions.setdefault(key, [])
        emitted_list = self._emitted.get(key, [])
        touching_open = [
            pane for pane in open_list if self._touches(pane, timestamp)
        ]
        touching_emitted = [
            entry for entry in emitted_list
            if self._touches(entry[0], timestamp)
        ]
        if not touching_open and not touching_emitted:
            pane = WindowPane(start=timestamp, end=timestamp, key=key)
            open_list.append(pane)
            self._append(pane, event)
            return
        # Every touched emitted session is being revised: retract it
        # (naming the bounds as emitted) and pull it back into play.
        for entry in touching_emitted:
            pane, revision = entry
            self._emit_retraction(pane, revision=revision)
            emitted_list.remove(entry)
            self._revised[id(pane)] = revision + 1
        panes = touching_open + [entry[0] for entry in touching_emitted]
        if len(panes) == 1:
            target = panes[0]
            if target not in open_list:
                open_list.append(target)
            self._append(target, event)
            target.start = min(target.start, timestamp)
            target.end = max(target.end, timestamp)
            return
        # Bridge: the event connects several proto-sessions into one.
        # The merged pane is a new object the observers never saw fill,
        # so delta consumers refold it at close — honest, and counted.
        for pane in touching_open:
            open_list.remove(pane)
        revision = max(
            (self._revised.pop(id(pane), 0) for pane in panes), default=0
        )
        ordered = sorted(panes, key=lambda pane: pane.start)
        merged = WindowPane(
            start=min(ordered[0].start, timestamp),
            end=max(max(pane.end for pane in panes), timestamp),
            events=[e for pane in ordered for e in pane.events],
            key=key,
        )
        if revision:
            self._revised[id(merged)] = revision
        open_list.append(merged)
        self._append(merged, event)
        for pane in panes:
            self._retire(pane)

    def _sweep(self) -> None:
        watermark, horizon = self._watermark, self.horizon
        gap = self.gap
        blocking = self.output_mode == OUTPUT_BLOCKING
        # Close threshold: blocking waits until no in-lateness event
        # could still extend the session; speculative closes at the
        # plain gap rule and revises later if needed.
        threshold = horizon if blocking else watermark
        for key in list(self._sessions):
            open_list = self._sessions[key]
            ready = [
                pane for pane in open_list if pane.end + gap < threshold
            ]
            for pane in sorted(ready, key=lambda pane: pane.start):
                open_list.remove(pane)
                revision = self._revised.pop(id(pane), 0)
                if blocking or pane.end + gap < horizon:
                    self._emit_pane(pane, final=True, revision=revision)
                    self._retire(pane)
                else:
                    self._emitted.setdefault(key, []).append(
                        [pane, revision]
                    )
                    self._emit_pane(pane, final=False, revision=revision)
            if not open_list:
                del self._sessions[key]
        if blocking:
            return
        # Finalize speculative sessions past the horizon.
        for key in list(self._emitted):
            entries = self._emitted[key]
            keep = []
            for entry in entries:
                if entry[0].end + gap < horizon:
                    self._retire(entry[0])
                else:
                    keep.append(entry)
            entries[:] = keep
            if not entries:
                del self._emitted[key]
