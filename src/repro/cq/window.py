"""Window operators: tumbling, sliding, count, session.

Windows segment a stream by *event time* (the event's own timestamp,
not arrival time).  A window operator collects events into panes and
emits each completed :class:`WindowPane` to its subscribers wrapped in
a ``window.pane`` event whose payload holds the pane.

Completion is watermark-by-progress: a pane closes when an event at or
beyond its end arrives (event time is assumed mostly ordered, the
stream norm); ``allowed_lateness`` tolerates bounded disorder, and
anything later is dropped and counted in ``late_dropped`` — an honest
accounting the tests assert on.  ``flush()`` force-closes open panes at
end of stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cq.stream import Operator, Stream
from repro.errors import WindowError
from repro.events import Event

PANE_EVENT_TYPE = "window.pane"


@dataclass
class WindowPane:
    """One completed window: its bounds, key, and contents."""

    start: float
    end: float
    events: list[Event] = field(default_factory=list)
    key: Any = None

    def __len__(self) -> int:
        return len(self.events)

    def values(self, field_name: str) -> list[Any]:
        """Extract one payload field from every event (None-skipping)."""
        result = []
        for event in self.events:
            value = event.get(field_name)
            if value is not None:
                result.append(value)
        return result


def _pane_event(pane: WindowPane, source: str) -> Event:
    return Event(
        event_type=PANE_EVENT_TYPE,
        timestamp=pane.end,
        payload={"pane": pane, "start": pane.start, "end": pane.end, "key": pane.key},
        source=source,
    )


# Observer called as ``observer(pane, event)`` right after ``event`` is
# appended to ``pane`` — the delta-processing hook: a downstream
# consumer (e.g. WindowAggregate in delta mode) folds each event into
# per-pane aggregate state as it arrives instead of refolding the whole
# pane at close.
PaneObserver = Callable[[WindowPane, Event], None]


class WindowOperator(Operator):
    """Base for window operators: pane bookkeeping plus append hooks."""

    def __init__(self, name: str, upstream: Stream) -> None:
        super().__init__(name, upstream)
        self._pane_observers: list[PaneObserver] = []

    def attach_pane_observer(self, observer: PaneObserver) -> None:
        """Register a per-append callback (the IVM delta feed)."""
        self._pane_observers.append(observer)

    def _append(self, pane: WindowPane, event: Event) -> None:
        pane.events.append(event)
        for observer in self._pane_observers:
            observer(pane, event)


class TumblingWindow(WindowOperator):
    """Fixed, non-overlapping windows of ``size`` seconds, aligned to
    multiples of ``size`` — optionally partitioned by ``key_field``."""

    def __init__(
        self,
        upstream: Stream,
        size: float,
        *,
        key_field: str | None = None,
        allowed_lateness: float = 0.0,
        name: str | None = None,
    ) -> None:
        if size <= 0:
            raise WindowError("window size must be positive")
        super().__init__(name or f"tumbling({size})", upstream)
        self.size = size
        self.key_field = key_field
        self.allowed_lateness = allowed_lateness
        self._panes: dict[tuple[Any, float], WindowPane] = {}
        self._watermark = float("-inf")
        self.late_dropped = 0

    def _key(self, event: Event) -> Any:
        return event.get(self.key_field) if self.key_field else None

    def process(self, event: Event) -> None:
        timestamp = event.timestamp
        if timestamp < self._watermark - self.allowed_lateness:
            self.late_dropped += 1
            return
        self._watermark = max(self._watermark, timestamp)
        start = (timestamp // self.size) * self.size
        key = self._key(event)
        pane = self._panes.get((key, start))
        if pane is None:
            pane = WindowPane(start=start, end=start + self.size, key=key)
            self._panes[(key, start)] = pane
        self._append(pane, event)
        self._close_expired()

    def _close_expired(self) -> None:
        horizon = self._watermark - self.allowed_lateness
        ready = [
            pane_key
            for pane_key, pane in self._panes.items()
            if pane.end <= horizon
        ]
        for pane_key in sorted(ready, key=lambda item: item[1]):
            pane = self._panes.pop(pane_key)
            self.emit(_pane_event(pane, self.name))

    def flush(self) -> None:
        """Close every open pane (end of stream)."""
        for pane_key in sorted(self._panes, key=lambda item: item[1]):
            pane = self._panes.pop(pane_key)
            self.emit(_pane_event(pane, self.name))


class SlidingWindow(WindowOperator):
    """Overlapping windows: ``size`` seconds every ``slide`` seconds.

    Each event lands in ``ceil(size / slide)`` panes.
    """

    def __init__(
        self,
        upstream: Stream,
        size: float,
        slide: float,
        *,
        key_field: str | None = None,
        allowed_lateness: float = 0.0,
        name: str | None = None,
    ) -> None:
        if size <= 0 or slide <= 0:
            raise WindowError("window size and slide must be positive")
        if slide > size:
            raise WindowError(
                "slide larger than size leaves gaps; use a tumbling window"
            )
        super().__init__(name or f"sliding({size},{slide})", upstream)
        self.size = size
        self.slide = slide
        self.key_field = key_field
        self.allowed_lateness = allowed_lateness
        self._panes: dict[tuple[Any, float], WindowPane] = {}
        self._watermark = float("-inf")
        self.late_dropped = 0

    def process(self, event: Event) -> None:
        timestamp = event.timestamp
        if timestamp < self._watermark - self.allowed_lateness:
            self.late_dropped += 1
            return
        self._watermark = max(self._watermark, timestamp)
        key = event.get(self.key_field) if self.key_field else None
        # Pane starts are the multiples of slide in (ts - size, ts].
        start = ((timestamp - self.size) // self.slide + 1) * self.slide
        while start <= timestamp:
            if timestamp < start + self.size:
                pane = self._panes.get((key, start))
                if pane is None:
                    pane = WindowPane(start=start, end=start + self.size, key=key)
                    self._panes[(key, start)] = pane
                self._append(pane, event)
            start += self.slide
        self._close_expired()

    def _close_expired(self) -> None:
        horizon = self._watermark - self.allowed_lateness
        ready = sorted(
            (pane_key for pane_key, pane in self._panes.items() if pane.end <= horizon),
            key=lambda item: item[1],
        )
        for pane_key in ready:
            self.emit(_pane_event(self._panes.pop(pane_key), self.name))

    def flush(self) -> None:
        for pane_key in sorted(self._panes, key=lambda item: item[1]):
            self.emit(_pane_event(self._panes.pop(pane_key), self.name))


class CountWindow(WindowOperator):
    """Every ``count`` events forms a pane (optionally per key).

    Panes are built eagerly (an open pane per key from its first event)
    so pane observers see each append — the delta path needs the pane to
    exist while it fills, not only at close.
    """

    def __init__(
        self,
        upstream: Stream,
        count: int,
        *,
        key_field: str | None = None,
        name: str | None = None,
    ) -> None:
        if count <= 0:
            raise WindowError("count must be positive")
        super().__init__(name or f"count({count})", upstream)
        self.count = count
        self.key_field = key_field
        self._panes: dict[Any, WindowPane] = {}

    def process(self, event: Event) -> None:
        key = event.get(self.key_field) if self.key_field else None
        pane = self._panes.get(key)
        if pane is None:
            pane = WindowPane(
                start=event.timestamp, end=event.timestamp, key=key
            )
            self._panes[key] = pane
        self._append(pane, event)
        pane.end = event.timestamp
        if len(pane.events) >= self.count:
            del self._panes[key]
            self.emit(_pane_event(pane, self.name))

    def flush(self) -> None:
        for key in list(self._panes):
            pane = self._panes.pop(key)
            if pane.events:
                self.emit(_pane_event(pane, self.name))


class SessionWindow(WindowOperator):
    """Activity sessions: a pane closes after ``gap`` seconds of
    silence (per key)."""

    def __init__(
        self,
        upstream: Stream,
        gap: float,
        *,
        key_field: str | None = None,
        name: str | None = None,
    ) -> None:
        if gap <= 0:
            raise WindowError("session gap must be positive")
        super().__init__(name or f"session({gap})", upstream)
        self.gap = gap
        self.key_field = key_field
        self._sessions: dict[Any, WindowPane] = {}
        self._watermark = float("-inf")

    def process(self, event: Event) -> None:
        timestamp = event.timestamp
        self._watermark = max(self._watermark, timestamp)
        key = event.get(self.key_field) if self.key_field else None
        session = self._sessions.get(key)
        if session is not None and timestamp - session.end > self.gap:
            self.emit(_pane_event(self._sessions.pop(key), self.name))
            session = None
        if session is None:
            session = WindowPane(start=timestamp, end=timestamp, key=key)
            self._sessions[key] = session
        self._append(session, event)
        session.end = max(session.end, timestamp)
        # Close other keys' idle sessions as time advances.
        idle = [
            session_key
            for session_key, pane in self._sessions.items()
            if self._watermark - pane.end > self.gap
        ]
        for session_key in idle:
            self.emit(_pane_event(self._sessions.pop(session_key), self.name))

    def flush(self) -> None:
        for key in sorted(self._sessions, key=lambda k: self._sessions[k].start):
            self.emit(_pane_event(self._sessions.pop(key), self.name))
