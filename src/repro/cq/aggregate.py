"""Window aggregation: incremental aggregate functions over panes.

An aggregate function is a small class with an *incremental contract*:
``add(value)`` folds a value in, ``remove(value)`` retracts one, and
``merge(delta)`` absorbs another instance's state — the DBToaster-style
delta-processing interface (Ahmad et al., PVLDB 2012) that lets
materialized views apply event deltas instead of refolding their whole
input.  Algebraic aggregates (Count/Sum/Avg/Stddev) maintain state in
O(1) per delta; Min/Max use a lazy-invalidation heap (O(log n)
amortized); holistic ones that cannot retract (First) advertise
``incremental = False`` so views fall back to refolding.

:class:`WindowAggregate` applies a named set of them to every incoming
:class:`repro.cq.window.WindowPane` and emits one summary event per
pane — the shape of a continuous ``GROUP BY window`` query.  In delta
mode it maintains per-pane aggregate state as events arrive, so closing
a pane is O(#aggregates) instead of O(window).
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Any, Callable

from repro.cq.stream import Operator, Stream
from repro.cq.window import PANE_EVENT_TYPE, WindowPane
from repro.errors import StreamError
from repro.events import KIND_RETRACTION, Event
from repro.obs.metrics import NULL_COUNTER


class AggregateFunction:
    """Base: feed values with :meth:`add`, read with :meth:`result`.

    Subclasses that support retraction set ``incremental = True`` and
    implement :meth:`remove`; all standard aggregates implement
    :meth:`merge` so partial (per-batch) states compose.
    """

    #: True when remove() is supported in O(1)–O(log n) amortized; the
    #: IVM layer refolds from source data when an aggregate is not.
    incremental = False

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def add_batch(self, values: Any) -> None:
        """Fold many values in one call.

        The default is a sequential loop, which keeps float-order-
        sensitive states (Sum/Avg/Stddev) bit-for-bit identical to
        per-value ``add`` — the property the IVM delta-vs-refold
        equivalence suite asserts.  Subclasses whose state is
        order-insensitive override this with a cheaper batch absorb.
        """
        add = self.add
        for value in values:
            add(value)

    def remove(self, value: Any) -> None:
        """Retract one previously added value."""
        raise StreamError(
            f"{type(self).__name__} does not support retraction"
        )

    def merge(self, delta: "AggregateFunction") -> None:
        """Fold another instance's state into this one (delta merge)."""
        raise StreamError(f"{type(self).__name__} does not support merge")

    def result(self) -> Any:
        raise NotImplementedError


class Count(AggregateFunction):
    """Number of non-NULL values (or events, when field is None)."""

    incremental = True

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def add_batch(self, values: Any) -> None:
        try:
            self.count += len(values)
        except TypeError:  # non-sized iterable
            self.count += sum(1 for _ in values)

    def remove(self, value: Any) -> None:
        if self.count == 0:
            raise StreamError("Count cannot retract from empty state")
        self.count -= 1

    def merge(self, delta: "Count") -> None:
        self.count += delta.count

    def result(self) -> int:
        return self.count


class Sum(AggregateFunction):
    incremental = True

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    @property
    def any(self) -> bool:
        return self.count > 0

    def add(self, value: Any) -> None:
        self.total += value
        self.count += 1

    def remove(self, value: Any) -> None:
        if self.count == 0:
            raise StreamError("Sum cannot retract from empty state")
        self.count -= 1
        if self.count == 0:
            self.total = 0.0  # cancel float drift at empty
        else:
            self.total -= value

    def merge(self, delta: "Sum") -> None:
        self.total += delta.total
        self.count += delta.count

    def result(self) -> float | None:
        return self.total if self.count else None


class Avg(AggregateFunction):
    incremental = True

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        self.total += value
        self.count += 1

    def remove(self, value: Any) -> None:
        if self.count == 0:
            raise StreamError("Avg cannot retract from empty state")
        self.count -= 1
        if self.count == 0:
            self.total = 0.0
        else:
            self.total -= value

    def merge(self, delta: "Avg") -> None:
        self.total += delta.total
        self.count += delta.count

    def result(self) -> float | None:
        return self.total / self.count if self.count else None


class _ExtremumBase(AggregateFunction):
    """Shared lazy-invalidation heap for Min/Max.

    ``remove(x)`` does not search the heap; it records ``x`` as pending
    and the heap top is pruned lazily on the next read.  Every element
    is pushed and popped at most once, so add/remove are O(log n)
    amortized regardless of which element is evicted — including the
    current extremum, the case that defeats naive single-value
    tracking.
    """

    incremental = True

    def __init__(self) -> None:
        self._heap: list[Any] = []
        self._pending: dict[Any, int] = {}
        self._size = 0

    def _wrap(self, value: Any) -> Any:
        return value

    def _unwrap(self, item: Any) -> Any:
        return item

    def add(self, value: Any) -> None:
        heapq.heappush(self._heap, self._wrap(value))
        self._size += 1

    def add_batch(self, values: Any) -> None:
        # O(n + m) heapify beats m pushes at O(m log n); the extremum
        # is order-insensitive, so results are identical.
        values = list(values)
        if not values:
            return
        self._heap.extend(self._wrap(value) for value in values)
        heapq.heapify(self._heap)
        self._size += len(values)

    def remove(self, value: Any) -> None:
        if self._size == 0:
            raise StreamError(
                f"{type(self).__name__} cannot retract from empty state"
            )
        self._size -= 1
        heap = self._heap
        if heap and self._unwrap(heap[0]) == value:
            heapq.heappop(heap)
            self._prune()
        else:
            self._pending[value] = self._pending.get(value, 0) + 1

    def _prune(self) -> None:
        heap, pending = self._heap, self._pending
        while heap and pending:
            top = self._unwrap(heap[0])
            count = pending.get(top)
            if not count:
                return
            if count == 1:
                del pending[top]
            else:
                pending[top] = count - 1
            heapq.heappop(heap)

    def _live_values(self) -> list[Any]:
        pending = dict(self._pending)
        live: list[Any] = []
        for item in self._heap:
            value = self._unwrap(item)
            count = pending.get(value, 0)
            if count:
                pending[value] = count - 1
            else:
                live.append(value)
        return live

    def merge(self, delta: "_ExtremumBase") -> None:
        for value in delta._live_values():
            self.add(value)

    @property
    def value(self) -> Any:
        """Current extremum (kept for pre-IVM API compatibility)."""
        return self.result()

    def result(self) -> Any:
        if self._size == 0:
            return None
        self._prune()
        return self._unwrap(self._heap[0])


class Min(_ExtremumBase):
    pass


class _Rev:
    """Order-inverting wrapper so a min-heap yields the maximum."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Rev") -> bool:
        return other.value < self.value


class Max(_ExtremumBase):
    def _wrap(self, value: Any) -> Any:
        return _Rev(value)

    def _unwrap(self, item: Any) -> Any:
        return item.value


class Stddev(AggregateFunction):
    """Sample standard deviation via Welford's algorithm.

    Retraction reverses the Welford update exactly; merge uses Chan's
    parallel formula, so per-batch partials compose without revisiting
    raw values.
    """

    incremental = True

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def remove(self, value: Any) -> None:
        if self.count == 0:
            raise StreamError("Stddev cannot retract from empty state")
        if self.count == 1:
            self.count = 0
            self.mean = 0.0
            self.m2 = 0.0
            return
        old_mean = (self.count * self.mean - value) / (self.count - 1)
        self.m2 -= (value - self.mean) * (value - old_mean)
        self.count -= 1
        self.mean = old_mean
        if self.m2 < 0.0:
            self.m2 = 0.0  # clamp float round-off; variance is >= 0

    def merge(self, delta: "Stddev") -> None:
        if delta.count == 0:
            return
        if self.count == 0:
            self.count = delta.count
            self.mean = delta.mean
            self.m2 = delta.m2
            return
        total = self.count + delta.count
        shift = delta.mean - self.mean
        self.m2 += delta.m2 + shift * shift * self.count * delta.count / total
        self.mean += shift * delta.count / total
        self.count = total

    def result(self) -> float | None:
        if self.count < 2:
            return None
        return math.sqrt(self.m2 / (self.count - 1))


class Percentile(AggregateFunction):
    """Exact percentile over a bisect-maintained sorted list.

    ``values`` is kept sorted, so add/remove are O(log n) search +
    O(n) shift — acceptable at window scale — and :meth:`result` no
    longer sorts.
    """

    incremental = True

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise StreamError("percentile fraction must be in [0, 1]")
        self.fraction = fraction
        self.values: list[Any] = []

    def add(self, value: Any) -> None:
        bisect.insort(self.values, value)

    def add_batch(self, values: Any) -> None:
        # Extend + one Timsort (which exploits the sorted prefix)
        # instead of m O(n) insort shifts.
        values = list(values)
        if not values:
            return
        self.values.extend(values)
        self.values.sort()

    def remove(self, value: Any) -> None:
        index = bisect.bisect_left(self.values, value)
        if index >= len(self.values) or self.values[index] != value:
            raise StreamError("Percentile cannot retract a value never added")
        self.values.pop(index)

    def merge(self, delta: "Percentile") -> None:
        for value in delta.values:
            self.add(value)

    def result(self) -> Any:
        if not self.values:
            return None
        index = min(
            len(self.values) - 1,
            max(0, math.ceil(self.fraction * len(self.values)) - 1),
        )
        return self.values[index]


class First(AggregateFunction):
    """First value seen.  Not incremental: retracting the current first
    would need the (discarded) arrival order to find its successor."""

    def __init__(self) -> None:
        self.value: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if not self.seen:
            self.value = value
            self.seen = True

    def merge(self, delta: "First") -> None:
        if not self.seen and delta.seen:
            self.value = delta.value
            self.seen = True

    def result(self) -> Any:
        return self.value


class Last(AggregateFunction):
    """Last value seen.  Not incremental, same reason as :class:`First`
    (merge assumes the delta's values arrived after this state's)."""

    def __init__(self) -> None:
        self.value: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        self.value = value
        self.seen = True

    def merge(self, delta: "Last") -> None:
        if delta.seen:
            self.value = delta.value
            self.seen = True

    def result(self) -> Any:
        return self.value


# (output name) -> (field to read, factory for the aggregate function)
AggregateSpec = dict[str, tuple[str | None, Callable[[], AggregateFunction]]]


class WindowAggregate(Operator):
    """Summarize each pane into one event.

    Example::

        agg = WindowAggregate(window, "vwap_1m", {
            "volume": ("qty", Sum),
            "trades": (None, Count),
            "high": ("price", Max),
        })

    emits ``Event("vwap_1m", pane.end, {"volume": ..., "trades": ...,
    "high": ..., "window_start": ..., "window_end": ..., "key": ...})``.

    Out-of-order support: a *speculative* upstream window emits panes
    marked non-final and may later retract and re-emit a revised pane.
    The aggregate mirrors that protocol in its own output — a pane
    retraction makes it emit its previously computable summary with
    ``kind="retraction"`` (retractions arrive *before* the revising
    append, so live delta state / the pane contents still describe the
    result as it was emitted), and a non-final pane is summarized
    without releasing delta state, which keeps accumulating until the
    pane retires.  Output payloads carry no revision bookkeeping, so a
    speculative stream's *net* results (emissions minus retractions)
    are byte-identical to blocking mode's.
    """

    def __init__(
        self,
        upstream: Stream,
        output_type: str,
        spec: AggregateSpec,
        *,
        name: str | None = None,
        recompute: bool = False,
        metrics: Any = None,
    ) -> None:
        super().__init__(name or f"aggregate({output_type})", upstream)
        self.output_type = output_type
        self.spec = dict(spec)
        # recompute=True keeps the pre-IVM refold-per-pane path — the
        # equivalence-testing escape hatch (and the only path when the
        # upstream exposes no pane-append hook).
        self.recompute = bool(recompute)
        # Delta state: id(pane) -> {output name -> aggregate instance},
        # maintained per append and popped when the pane closes.
        self._state: dict[int, dict[str, AggregateFunction]] = {}
        # Panes first observed mid-fill (operator attached late): their
        # delta state would be partial, so they refold at close.
        self._partial: set[int] = set()
        self.retractions_emitted = 0
        self._m_deltas = NULL_COUNTER
        self._m_refolds = NULL_COUNTER
        self._m_retractions = NULL_COUNTER
        if metrics is not None:
            self.bind_metrics(metrics)
            self._m_deltas = metrics.counter(
                "cq.agg.deltas_applied", stream=self.name
            )
            self._m_refolds = metrics.counter(
                "cq.agg.refolds", stream=self.name
            )
            self._m_retractions = metrics.counter(
                "cq.agg.retractions_emitted", stream=self.name
            )
        if not self.recompute:
            attach = getattr(upstream, "attach_pane_observer", None)
            if attach is not None:
                attach(self._on_append)
        # Speculative panes finalize *silently* (no closing event), so
        # delta state cannot be released at close alone — the window
        # operator's retire hook marks the true end of a pane's life.
        retire = getattr(upstream, "attach_pane_retire_observer", None)
        if retire is not None:
            retire(self._on_retire)

    # -- delta path ----------------------------------------------------------

    def _on_append(self, pane: WindowPane, event: Event) -> None:
        pane_id = id(pane)
        if pane_id in self._partial:
            return
        state = self._state.get(pane_id)
        if state is None:
            if len(pane.events) != 1:
                self._partial.add(pane_id)
                return
            state = {
                output_name: factory()
                for output_name, (_field, factory) in self.spec.items()
            }
            self._state[pane_id] = state
        for output_name, (field_name, _factory) in self.spec.items():
            if field_name is None:
                state[output_name].add(1)
            else:
                value = event.get(field_name)
                if value is not None:
                    state[output_name].add(value)
        self._m_deltas.inc()

    def _refold(self, pane: WindowPane) -> dict[str, AggregateFunction]:
        state: dict[str, AggregateFunction] = {}
        for output_name, (field_name, factory) in self.spec.items():
            fn = factory()
            if field_name is None:
                fn.add_batch([1] * len(pane.events))
            else:
                fn.add_batch(list(pane.values(field_name)))
            state[output_name] = fn
        return state

    def _on_retire(self, pane: WindowPane) -> None:
        self._state.pop(id(pane), None)
        self._partial.discard(id(pane))

    def _pane_state(
        self, pane: WindowPane
    ) -> dict[str, AggregateFunction]:
        """The aggregate state for a pane: live delta state when whole,
        else a refold of the pane's current contents."""
        pane_id = id(pane)
        state = self._state.get(pane_id)
        if self.recompute or state is None or pane_id in self._partial:
            state = self._refold(pane)
            if not self.recompute:
                self._m_refolds.inc()
        return state

    def _summarize(
        self,
        pane: WindowPane,
        state: dict[str, AggregateFunction],
        *,
        start: float,
        end: float,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "window_start": start,
            "window_end": end,
            "key": pane.key,
            "count": len(pane),
        }
        for output_name, fn in state.items():
            payload[output_name] = fn.result()
        return payload

    def process(self, event: Event) -> None:
        if event.event_type != PANE_EVENT_TYPE:
            raise StreamError(
                "WindowAggregate must consume a window operator's panes"
            )
        pane: WindowPane = event["pane"]
        state = self._pane_state(pane)
        # A non-final (speculative) emission keeps its delta state: the
        # pane may still be revised, and the retire hook releases it.
        if event.get("final", True):
            self._on_retire(pane)
        payload = self._summarize(
            pane, state, start=pane.start, end=pane.end
        )
        self.emit(
            Event(
                event_type=self.output_type,
                timestamp=pane.end,
                payload=payload,
                source=self.name,
                causes=tuple(e.event_id for e in pane.events[:32]),
            )
        )

    def on_retraction(self, event: Event) -> None:
        if event.event_type != PANE_EVENT_TYPE or "pane" not in event.payload:
            self.emit(event)  # not ours — forward unprocessed
            return
        # The window operator retracts a pane *before* appending the
        # revising event, so the pane (and any delta state) still holds
        # exactly the contents the retracted summary was computed from.
        # The carried start/end are the bounds as originally emitted —
        # a revised session's bounds may since have moved.
        pane: WindowPane = event["pane"]
        state = self._pane_state(pane)
        payload = self._summarize(
            pane, state, start=event["start"], end=event["end"]
        )
        self.retractions_emitted += 1
        self._m_retractions.inc()
        self.emit(
            Event(
                event_type=self.output_type,
                timestamp=event["end"],
                payload=payload,
                source=self.name,
                causes=tuple(e.event_id for e in pane.events[:32]),
                kind=KIND_RETRACTION,
            )
        )
