"""Window aggregation: incremental aggregate functions over panes.

An aggregate function is a small class with ``add(value)`` and
``result()``; :class:`WindowAggregate` applies a named set of them to
every incoming :class:`repro.cq.window.WindowPane` and emits one
summary event per pane — the shape of a continuous ``GROUP BY window``
query.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.cq.stream import Operator, Stream
from repro.cq.window import PANE_EVENT_TYPE, WindowPane
from repro.errors import StreamError
from repro.events import Event


class AggregateFunction:
    """Base: feed values with :meth:`add`, read with :meth:`result`."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class Count(AggregateFunction):
    """Number of non-NULL values (or events, when field is None)."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class Sum(AggregateFunction):
    def __init__(self) -> None:
        self.total = 0.0
        self.any = False

    def add(self, value: Any) -> None:
        self.total += value
        self.any = True

    def result(self) -> float | None:
        return self.total if self.any else None


class Avg(AggregateFunction):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        self.total += value
        self.count += 1

    def result(self) -> float | None:
        return self.total / self.count if self.count else None


class Min(AggregateFunction):
    def __init__(self) -> None:
        self.value: Any = None

    def add(self, value: Any) -> None:
        if self.value is None or value < self.value:
            self.value = value

    def result(self) -> Any:
        return self.value


class Max(AggregateFunction):
    def __init__(self) -> None:
        self.value: Any = None

    def add(self, value: Any) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def result(self) -> Any:
        return self.value


class Stddev(AggregateFunction):
    """Sample standard deviation via Welford's algorithm."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self) -> float | None:
        if self.count < 2:
            return None
        return math.sqrt(self.m2 / (self.count - 1))


class Percentile(AggregateFunction):
    """Exact percentile (stores values; fine at window scale)."""

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise StreamError("percentile fraction must be in [0, 1]")
        self.fraction = fraction
        self.values: list[Any] = []

    def add(self, value: Any) -> None:
        self.values.append(value)

    def result(self) -> Any:
        if not self.values:
            return None
        ordered = sorted(self.values)
        index = min(
            len(ordered) - 1, max(0, math.ceil(self.fraction * len(ordered)) - 1)
        )
        return ordered[index]


class First(AggregateFunction):
    def __init__(self) -> None:
        self.value: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if not self.seen:
            self.value = value
            self.seen = True

    def result(self) -> Any:
        return self.value


class Last(AggregateFunction):
    def __init__(self) -> None:
        self.value: Any = None

    def add(self, value: Any) -> None:
        self.value = value

    def result(self) -> Any:
        return self.value


# (output name) -> (field to read, factory for the aggregate function)
AggregateSpec = dict[str, tuple[str | None, Callable[[], AggregateFunction]]]


class WindowAggregate(Operator):
    """Summarize each pane into one event.

    Example::

        agg = WindowAggregate(window, "vwap_1m", {
            "volume": ("qty", Sum),
            "trades": (None, Count),
            "high": ("price", Max),
        })

    emits ``Event("vwap_1m", pane.end, {"volume": ..., "trades": ...,
    "high": ..., "window_start": ..., "window_end": ..., "key": ...})``.
    """

    def __init__(
        self,
        upstream: Stream,
        output_type: str,
        spec: AggregateSpec,
        *,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"aggregate({output_type})", upstream)
        self.output_type = output_type
        self.spec = dict(spec)

    def process(self, event: Event) -> None:
        if event.event_type != PANE_EVENT_TYPE:
            raise StreamError(
                "WindowAggregate must consume a window operator's panes"
            )
        pane: WindowPane = event["pane"]
        payload: dict[str, Any] = {
            "window_start": pane.start,
            "window_end": pane.end,
            "key": pane.key,
            "count": len(pane),
        }
        for output_name, (field_name, factory) in self.spec.items():
            fn = factory()
            if field_name is None:
                for _event in pane.events:
                    fn.add(1)
            else:
                for value in pane.values(field_name):
                    fn.add(value)
            payload[output_name] = fn.result()
        self.emit(
            Event(
                event_type=self.output_type,
                timestamp=pane.end,
                payload=payload,
                source=self.name,
                causes=tuple(e.event_id for e in pane.events[:32]),
            )
        )
