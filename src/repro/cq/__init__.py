"""Continuous queries and complex event processing (§2.2.c.i.3–4).

Continuous queries are dataflow graphs of push-based operators:
streams → filters/maps → windows → aggregates → sinks, plus an
NFA-based pattern matcher for event sequences (the "comprehensive base
for CEP") and continuous analytics that score which candidate queries
are *valuable* (§2.2.c.i.4).
"""

from repro.cq.aggregate import (
    Avg,
    Count,
    First,
    Last,
    Max,
    Min,
    Percentile,
    Stddev,
    Sum,
    WindowAggregate,
)
from repro.cq.analytics import AnomalyDetector, QueryValueScorer, StreamStatistics
from repro.cq.ivm import VIEW_CHANGE_EVENT_TYPE, MaterializedView, ViewSnapshot
from repro.cq.operators import FilterOperator, MapOperator, StreamJoin, StreamTableJoin
from repro.cq.pattern import Kleene, PatternElement, PatternMatcher, Seq
from repro.cq.query import ContinuousQuery, CQEngine
from repro.cq.stream import Stream
from repro.cq.window import (
    OUTPUT_BLOCKING,
    OUTPUT_SPECULATIVE,
    CountWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
    WindowPane,
)

__all__ = [
    "Stream",
    "FilterOperator",
    "MapOperator",
    "StreamJoin",
    "StreamTableJoin",
    "TumblingWindow",
    "SlidingWindow",
    "CountWindow",
    "SessionWindow",
    "WindowPane",
    "WindowAggregate",
    "Count",
    "Sum",
    "Avg",
    "Min",
    "Max",
    "Stddev",
    "Percentile",
    "First",
    "Last",
    "PatternMatcher",
    "PatternElement",
    "Seq",
    "Kleene",
    "ContinuousQuery",
    "CQEngine",
    "StreamStatistics",
    "AnomalyDetector",
    "QueryValueScorer",
    "MaterializedView",
    "ViewSnapshot",
    "VIEW_CHANGE_EVENT_TYPE",
    "OUTPUT_BLOCKING",
    "OUTPUT_SPECULATIVE",
]
