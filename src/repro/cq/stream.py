"""Push-based streams: the dataflow substrate for continuous queries.

A :class:`Stream` is a named channel of :class:`repro.events.Event`.
Operators are themselves streams that subscribe to an upstream and push
derived events downstream, so arbitrary dataflow graphs compose from
one primitive.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.events import KIND_PUNCTUATION, KIND_RETRACTION, Event, punctuation
from repro.obs.metrics import NULL_COUNTER

EventSink = Callable[[Event], None]


class Stream:
    """A named event channel with fan-out."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._sinks: list[EventSink] = []
        self.events_in = 0
        self.events_out = 0
        # No-op instruments until a registry is bound; the hot path
        # always pays the same one-attribute-load-plus-inc either way.
        self._m_in = NULL_COUNTER
        self._m_out = NULL_COUNTER

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def bind_metrics(self, metrics: Any) -> "Stream":
        """Export this stream's in/out counts through a registry,
        labelled by stream name; returns self for chaining."""
        self._m_in = metrics.counter("cq.events_in", stream=self.name)
        self._m_out = metrics.counter("cq.events_out", stream=self.name)
        if self.events_in:
            self._m_in.inc(self.events_in)
        if self.events_out:
            self._m_out.inc(self.events_out)
        return self

    def subscribe(self, sink: EventSink) -> "Stream":
        """Attach a downstream consumer; returns self for chaining."""
        self._sinks.append(sink)
        return self

    def unsubscribe(self, sink: EventSink) -> None:
        self._sinks.remove(sink)

    def push(self, event: Event) -> None:
        """Inject an event; the default stream forwards unchanged."""
        self.events_in += 1
        self._m_in.inc()
        self.emit(event)

    def punctuate(self, watermark: float) -> None:
        """Inject a watermark punctuation: a promise that no further
        data events with ``timestamp < watermark`` will be pushed."""
        self.push(punctuation(watermark, source=self.name))

    def emit(self, event: Event) -> None:
        """Deliver an event to every subscriber."""
        self.events_out += 1
        self._m_out.inc()
        for sink in self._sinks:
            sink(event)


class Operator(Stream):
    """A stream derived from an upstream stream.

    Subclasses implement :meth:`process`; construction wires the
    subscription so graphs are built by just instantiating operators.

    Message kinds route separately: data events reach :meth:`process`;
    punctuation reaches :meth:`on_punctuation` (default: forward, so
    watermarks traverse stateless operators untouched); retractions
    reach :meth:`on_retraction` (default: forward unprocessed —
    operators that can *compensate*, e.g. filters and views, override
    it).
    """

    def __init__(self, name: str, upstream: Stream) -> None:
        super().__init__(name)
        self.upstream = upstream
        upstream.subscribe(self.push)

    def push(self, event: Event) -> None:
        self.events_in += 1
        self._m_in.inc()
        if event.kind == KIND_PUNCTUATION:
            self.on_punctuation(event)
        elif event.kind == KIND_RETRACTION:
            self.on_retraction(event)
        else:
            self.process(event)

    def process(self, event: Event) -> None:
        raise NotImplementedError

    def on_punctuation(self, event: Event) -> None:
        """Handle a watermark punctuation; default forwards it."""
        self.emit(event)

    def on_retraction(self, event: Event) -> None:
        """Handle a retraction; default forwards it unprocessed."""
        self.emit(event)

    def detach(self) -> None:
        """Disconnect from the upstream (stops receiving events)."""
        self.upstream.unsubscribe(self.push)
