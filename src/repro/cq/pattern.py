"""NFA-based event-pattern matching — the CEP core (§2.2.c.i.3).

Patterns are sequences of named elements::

    Seq(
        PatternElement("spike", "tick", "price > 100"),
        Kleene("rise", "tick", "rise_price IS NULL OR price > rise_price"),
        PatternElement("drop", "tick", "price < spike_price * 0.9"),
        within=60.0,
    )

Each element's condition is an expression over the current event's
payload plus *bindings* of previously matched elements, flattened as
``<name>_<field>`` (e.g. ``spike_price``).  A :class:`Kleene` element
matches one-or-more events; inside its own condition the binding
``<name>_<field>`` refers to the most recent accepted event, enabling
running constraints like "each price above the previous" — guard the
first iteration with ``<name>_<field> IS NULL OR ...`` since no binding
exists yet (unbound reads are SQL NULL).

Negated elements (``negated=True``) forbid an occurrence *between*
their neighbours: ``SEQ(A, ¬B, C)`` matches A…C with no B in between.

Event-selection strategies:

* ``"strict"`` — matched events must be contiguous; any non-matching
  event kills the run.
* ``"skip_till_next"`` (default) — irrelevant events are skipped; each
  run takes the first event that matches its next element.
* ``"skip_till_any"`` — every match forks the run, exploring all
  combinations (exhaustive, exponential in the worst case).

``within`` bounds the pattern's total duration and — crucially for
EXP-6 — lets the matcher *prune* runs that can no longer complete.
``prune_expired=False`` disables that pruning (the ablation arm) and
lets dead runs accumulate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.cq.stream import Operator, Stream
from repro.db.expr import Expression, compile_predicate
from repro.db.sql.parser import parse_expression
from repro.errors import PatternError
from repro.events import Event, correlate
from repro.rules.engine import EventContext

_SELECTION_MODES = ("strict", "skip_till_next", "skip_till_any")


@dataclass
class PatternElement:
    """One step of a sequence pattern."""

    name: str
    event_type: str | None = None
    condition: str | Expression | None = None
    negated: bool = False
    kleene: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse_expression(self.condition)

    def matches(self, event: Event, bindings: dict[str, Any]) -> bool:
        if self.event_type is not None and not event.matches_type(self.event_type):
            return False
        if self.condition is None:
            return True
        context = EventContext(bindings)
        context.update(event.payload)
        context.setdefault("event_type", event.event_type)
        context.setdefault("timestamp", event.timestamp)
        return compile_predicate(self.condition)(context)


def Kleene(
    name: str,
    event_type: str | None = None,
    condition: str | Expression | None = None,
) -> PatternElement:
    """One-or-more repetition of an element."""
    return PatternElement(name, event_type, condition, kleene=True)


@dataclass
class Seq:
    """A sequence pattern: positive steps with optional negation guards."""

    elements: tuple[PatternElement, ...]
    within: float | None = None

    def __init__(self, *elements: PatternElement, within: float | None = None) -> None:
        if not elements:
            raise PatternError("a sequence pattern needs at least one element")
        names = [element.name for element in elements]
        if len(set(names)) != len(names):
            raise PatternError(f"duplicate element names in pattern: {names}")
        if elements[0].negated or elements[-1].negated:
            raise PatternError(
                "a pattern cannot start or end with a negated element"
            )
        object.__setattr__(self, "elements", tuple(elements))
        object.__setattr__(self, "within", within)

    def compile(self) -> list["_Step"]:
        """Group each positive element with the negations guarding it."""
        steps: list[_Step] = []
        pending_negations: list[PatternElement] = []
        for element in self.elements:
            if element.negated:
                pending_negations.append(element)
            else:
                steps.append(_Step(element, tuple(pending_negations)))
                pending_negations = []
        return steps


@dataclass(frozen=True)
class _Step:
    element: PatternElement
    guards: tuple[PatternElement, ...]  # negations active before this step


@dataclass
class _Run:
    """One partial match."""

    position: int
    start_ts: float
    bindings: dict[str, Any] = field(default_factory=dict)
    matched: list[Event] = field(default_factory=list)
    run_id: int = field(default_factory=itertools.count(1).__next__)

    def fork(self) -> "_Run":
        return _Run(
            position=self.position,
            start_ts=self.start_ts,
            bindings=dict(self.bindings),
            matched=list(self.matched),
        )


class PatternMatcher(Operator):
    """Matches a :class:`Seq` against a stream; emits one composite
    event per complete match."""

    def __init__(
        self,
        upstream: Stream,
        pattern: Seq,
        *,
        output_type: str,
        selection: str = "skip_till_next",
        prune_expired: bool = True,
        max_runs: int = 100_000,
        name: str | None = None,
    ) -> None:
        if selection not in _SELECTION_MODES:
            raise PatternError(f"unknown selection strategy {selection!r}")
        super().__init__(name or f"pattern({output_type})", upstream)
        self.pattern = pattern
        self.steps = pattern.compile()
        self.output_type = output_type
        self.selection = selection
        self.prune_expired = prune_expired
        self.max_runs = max_runs
        self._runs: list[_Run] = []
        self.stats = {
            "matches": 0,
            "runs_created": 0,
            "runs_pruned": 0,
            "runs_killed": 0,
            "peak_runs": 0,
        }

    @property
    def active_runs(self) -> int:
        return len(self._runs)

    def _bind(self, run: _Run, element: PatternElement, event: Event) -> None:
        prefix = f"{element.name}_"
        for key, value in event.payload.items():
            run.bindings[prefix + key] = value
        run.bindings[prefix + "timestamp"] = event.timestamp
        if element.kleene:
            count_key = prefix + "count"
            run.bindings[count_key] = run.bindings.get(count_key, 0) + 1
        run.matched.append(event)

    def process(self, event: Event) -> None:
        within = self.pattern.within

        if self.prune_expired and within is not None:
            live: list[_Run] = []
            for run in self._runs:
                if event.timestamp - run.start_ts > within:
                    self.stats["runs_pruned"] += 1
                else:
                    live.append(run)
            self._runs = live

        survivors: list[_Run] = []
        for run in self._runs:
            alive, completed = self._advance(run, event)
            for done in completed:
                self._emit_match(done, event.timestamp)
            survivors.extend(alive)

        # Every event may start a fresh run at step 0.
        seed = _Run(position=0, start_ts=event.timestamp)
        alive, completed = self._advance(seed, event)
        for done in completed:
            self.stats["runs_created"] += 1
            self._emit_match(done, event.timestamp)
        for run in alive:
            if run.matched:  # Idle seeds (no first match) are not kept.
                self.stats["runs_created"] += 1
                survivors.append(run)

        self._runs = survivors[: self.max_runs]
        self.stats["peak_runs"] = max(self.stats["peak_runs"], len(self._runs))

    def _advance(self, run: _Run, event: Event) -> tuple[list[_Run], list[_Run]]:
        """Feed one event to one run.

        Returns ``(alive, completed)``.  A run may appear in both lists
        (a Kleene-final pattern emits progressively while remaining
        extendable).  An empty ``alive`` with empty ``completed`` means
        the run died (negation guard or strict-contiguity violation).
        """
        step = self.steps[run.position]
        for guard in step.guards:
            if guard.matches(event, run.bindings):
                self.stats["runs_killed"] += 1
                return [], []

        element = step.element
        last = run.position == len(self.steps) - 1

        if not element.kleene:
            if element.matches(event, run.bindings):
                alive: list[_Run] = []
                if self.selection == "skip_till_any" and run.matched:
                    # A copy keeps waiting for a later occurrence.
                    waiter = run.fork()
                    self.stats["runs_created"] += 1
                    alive.append(waiter)
                self._bind(run, element, event)
                run.position += 1
                if run.position == len(self.steps):
                    return alive, [run]
                alive.append(run)
                return alive, []
            if self.selection == "strict" and run.matched:
                self.stats["runs_killed"] += 1
                return [], []
            return [run], []

        # Kleene step.
        count = run.bindings.get(f"{element.name}_count", 0)
        can_extend = element.matches(event, run.bindings)
        can_advance = False
        if count > 0 and not last:
            next_step = self.steps[run.position + 1]
            for guard in next_step.guards:
                if guard.matches(event, run.bindings):
                    self.stats["runs_killed"] += 1
                    return [], []
            can_advance = next_step.element.matches(event, run.bindings)

        if can_extend and can_advance:
            # Ambiguous: fork — one run advances, this one extends.
            fork = run.fork()
            self.stats["runs_created"] += 1
            advanced_alive, advanced_done = self._take_next(fork, event)
            self._bind(run, element, event)
            alive = [run, *advanced_alive]
            completed = list(advanced_done)
            if last:
                completed.append(run)
            return alive, completed
        if can_extend:
            self._bind(run, element, event)
            # A completed Kleene-final run emits progressively but stays
            # alive to match longer repetitions.
            return [run], ([run] if last else [])
        if can_advance:
            return self._take_next(run, event)
        if self.selection == "strict" and run.matched:
            self.stats["runs_killed"] += 1
            return [], []
        return [run], []

    def _take_next(self, run: _Run, event: Event) -> tuple[list[_Run], list[_Run]]:
        """Close the current (Kleene) step and match the next one."""
        run.position += 1
        next_element = self.steps[run.position].element
        self._bind(run, next_element, event)
        if next_element.kleene:
            if run.position == len(self.steps) - 1:
                return [run], [run]  # Kleene-final progressive emit.
            return [run], []
        run.position += 1
        if run.position == len(self.steps):
            return [], [run]
        return [run], []

    def _emit_match(self, run: _Run, end_ts: float) -> None:
        # WITHIN is a semantic bound, enforced here no matter whether
        # expired-run *pruning* (the cost optimization) is enabled.
        within = self.pattern.within
        if within is not None and end_ts - run.start_ts > within:
            return
        self.stats["matches"] += 1
        payload = dict(run.bindings)
        payload["pattern_start"] = run.start_ts
        payload["pattern_end"] = end_ts
        self.emit(
            correlate(
                run.matched,
                self.output_type,
                payload,
                timestamp=end_ts,
                source=self.name,
            )
        )
