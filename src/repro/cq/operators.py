"""Stateless and join operators for continuous queries."""

from __future__ import annotations

from typing import Any, Callable

from repro.cq.stream import Operator, Stream
from repro.db.database import Database
from repro.db.expr import Expression, compile_predicate
from repro.db.sql.parser import parse_expression
from repro.errors import StreamError
from repro.events import (
    KIND_PUNCTUATION,
    KIND_RETRACTION,
    Event,
    correlate,
    punctuation,
)
from repro.obs.metrics import NULL_COUNTER
from repro.rules.engine import EventContext


class FilterOperator(Operator):
    """Pass events whose condition holds.

    Conditions may be expression text (SQL grammar over payload
    attributes, absent attributes reading as NULL) or any callable
    ``Event -> bool``.
    """

    def __init__(
        self,
        upstream: Stream,
        condition: str | Expression | Callable[[Event], bool],
        *,
        name: str | None = None,
    ) -> None:
        super().__init__(name or "filter", upstream)
        if isinstance(condition, str):
            condition = parse_expression(condition)
        self.condition = condition
        self.dropped = 0

    def _passes(self, event: Event) -> bool:
        if isinstance(self.condition, Expression):
            context = EventContext(event.payload)
            context.setdefault("event_type", event.event_type)
            return bool(compile_predicate(self.condition)(context))
        return bool(self.condition(event))

    def process(self, event: Event) -> None:
        if self._passes(event):
            self.emit(event)
        else:
            self.dropped += 1

    def on_retraction(self, event: Event) -> None:
        # A retraction carries the payload of the result it compensates,
        # so the predicate gives the same verdict: retractions of events
        # that passed pass; retractions of filtered events have nothing
        # downstream to compensate and are filtered identically.
        self.process(event)


class MapOperator(Operator):
    """Transform each event with a function returning an Event, a
    payload dict (re-wrapped, provenance preserved), or None (drop)."""

    def __init__(
        self,
        upstream: Stream,
        fn: Callable[[Event], Event | dict[str, Any] | None],
        *,
        output_type: str | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or "map", upstream)
        self.fn = fn
        self.output_type = output_type

    def process(self, event: Event) -> None:
        result = self.fn(event)
        if result is None:
            return
        if isinstance(result, Event):
            self.emit(result)
            return
        self.emit(
            event.derive(
                self.output_type or event.event_type,
                result,
                source=self.name,
            )
        )


class StreamJoin(Stream):
    """Windowed equi-join of two streams.

    Events from ``left`` and ``right`` sharing the same key that occur
    within ``window`` seconds of each other produce a joined event of
    type ``output_type`` whose payload merges both sides (left fields
    prefixed ``left_``, right fields ``right_``, key under ``key``).

    State is pruned as event time advances.  Each side keeps its own
    watermark, and a buffer is pruned against the *other* side's
    watermark: a buffered left event at ``t`` can still join right
    events arriving with timestamps down to ``right_watermark``, so it
    is evictable only once ``t + window < right_watermark`` — pruning
    both buffers against a single shared watermark (the old bug) let a
    fast left stream evict right-side events still within the join
    window of in-flight left events, silently losing matches.

    Events lacking the key field cannot join; they are dropped and
    counted in ``null_key_dropped`` rather than silently discarded.
    Watermark punctuation on either input advances that side's clock
    (pruning state without data) and re-emits downstream carrying
    ``min(left, right)`` — the joined stream's own watermark.
    """

    def __init__(
        self,
        left: Stream,
        right: Stream,
        *,
        key_field: str,
        window: float,
        output_type: str,
        name: str | None = None,
    ) -> None:
        if window <= 0:
            raise StreamError("join window must be positive")
        super().__init__(name or f"join({left.name},{right.name})")
        self.key_field = key_field
        self.window = window
        self.output_type = output_type
        self._left_buffer: dict[Any, list[Event]] = {}
        self._right_buffer: dict[Any, list[Event]] = {}
        self._left_watermark = float("-inf")
        self._right_watermark = float("-inf")
        self._out_watermark = float("-inf")
        self.null_key_dropped = 0
        self.retractions_dropped = 0
        self._m_null_key = NULL_COUNTER
        left.subscribe(self._on_left)
        right.subscribe(self._on_right)

    def bind_metrics(self, metrics: Any) -> "StreamJoin":
        super().bind_metrics(metrics)
        self._m_null_key = metrics.counter(
            "cq.null_key_dropped", stream=self.name
        )
        if self.null_key_dropped:
            self._m_null_key.inc(self.null_key_dropped)
        return self

    @property
    def watermark(self) -> float:
        """The joined stream's watermark: min of the two inputs."""
        return min(self._left_watermark, self._right_watermark)

    def buffered(self) -> int:
        return sum(len(events) for events in self._left_buffer.values()) + sum(
            len(events) for events in self._right_buffer.values()
        )

    def _on_left(self, event: Event) -> None:
        self._ingest(event, self._left_buffer, self._right_buffer, left_side=True)

    def _on_right(self, event: Event) -> None:
        self._ingest(event, self._right_buffer, self._left_buffer, left_side=False)

    def _ingest(
        self,
        event: Event,
        own: dict[Any, list[Event]],
        other: dict[Any, list[Event]],
        *,
        left_side: bool,
    ) -> None:
        self.events_in += 1
        self._m_in.inc()
        if event.kind == KIND_PUNCTUATION:
            self._advance(
                event.get("watermark", event.timestamp),
                left_side=left_side,
                propagate=True,
            )
            return
        if event.kind == KIND_RETRACTION:
            # A join cannot compensate (the retracted event may have
            # produced arbitrary joined outputs); drop and count.
            self.retractions_dropped += 1
            return
        key = event.get(self.key_field)
        if key is None:
            self.null_key_dropped += 1
            self._m_null_key.inc()
            return
        self._advance(event.timestamp, left_side=left_side)
        for partner in other.get(key, ()):
            if abs(partner.timestamp - event.timestamp) <= self.window:
                left_event, right_event = (
                    (event, partner) if left_side else (partner, event)
                )
                payload: dict[str, Any] = {"key": key}
                for field_name, value in left_event.payload.items():
                    payload[f"left_{field_name}"] = value
                for field_name, value in right_event.payload.items():
                    payload[f"right_{field_name}"] = value
                self.emit(
                    correlate(
                        [left_event, right_event],
                        self.output_type,
                        payload,
                        source=self.name,
                    )
                )
        own.setdefault(key, []).append(event)

    def _advance(
        self, timestamp: float, *, left_side: bool, propagate: bool = False
    ) -> None:
        if left_side:
            self._left_watermark = max(self._left_watermark, timestamp)
        else:
            self._right_watermark = max(self._right_watermark, timestamp)
        # A left event at t joins right events in [t - window, t + window];
        # future right events have timestamps >= right_watermark, so a
        # buffered left event is dead only once t + window < right_watermark
        # — each buffer prunes against the *other* side's clock.
        self._prune(self._left_buffer, self._right_watermark - self.window)
        self._prune(self._right_buffer, self._left_watermark - self.window)
        if not propagate:
            return
        watermark = self.watermark
        if watermark > self._out_watermark and watermark != float("-inf"):
            self._out_watermark = watermark
            self.emit(punctuation(watermark, source=self.name))

    def _prune(
        self, buffer: dict[Any, list[Event]], horizon: float
    ) -> None:
        empty_keys = []
        for key, events in buffer.items():
            kept = [event for event in events if event.timestamp >= horizon]
            if kept:
                buffer[key] = kept
            else:
                empty_keys.append(key)
        for key in empty_keys:
            del buffer[key]


class StreamTableJoin(Operator):
    """Enrich stream events with a database-table lookup.

    The stream-table join of §2.2.c: reference data lives in the
    database; each event gets the matching row's columns merged in
    under ``prefix``.  Events with no matching row pass through
    unchanged (left join) or are dropped (inner join).
    """

    def __init__(
        self,
        upstream: Stream,
        db: Database,
        table_name: str,
        *,
        event_key: str,
        table_key: str,
        prefix: str = "",
        inner: bool = False,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"lookup({table_name})", upstream)
        self.db = db
        self.table_name = table_name
        self.event_key = event_key
        self.table_key = table_key
        self.prefix = prefix
        self.inner = inner

    def process(self, event: Event) -> None:
        key = event.get(self.event_key)
        table = self.db.catalog.table(self.table_name)
        rowids = table.lookup_rowids(self.table_key, key) if key is not None else []
        if not rowids:
            if not self.inner:
                self.emit(event)
            return
        row = table.get(rowids[0])
        enrichment = {
            f"{self.prefix}{column}": value for column, value in row.items()
        }
        self.emit(event.with_payload(**enrichment))
