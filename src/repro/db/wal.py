"""Write-ahead log — the database *journal*.

The WAL serves two masters:

1. **Durability / recovery** (paper §2.2.b.ii.3): every mutation is
   logged before it is applied; on crash, committed work is replayed
   from the durable prefix of the log (see :mod:`repro.db.recovery`).
2. **Journal-based event capture** (paper §2.2.a.ii): an asynchronous
   *log miner* reads committed records through :class:`JournalReader`
   and turns them into events without adding any work to the foreground
   transaction path — the architectural contrast benchmarked in EXP-1.

Durability is modeled explicitly so crash tests are honest: records
appended but not yet flushed are lost by :meth:`WriteAheadLog.crash`.
With ``sync_policy="commit"`` (the default) the database flushes on
every commit, so committed work always survives; with
``sync_policy="none"`` flushing is manual and a crash may lose
committed-but-unflushed transactions — the classic trade the tutorial's
"performance vs recoverability" bullet points at.

**On-disk format.** Version-2 journals start with a ``%REPRO-WAL 2``
header line; every record is one *frame* — a line of the form
``<length>:<crc32-hex>:<json>`` where ``length`` is the byte length of
the JSON payload and the CRC covers those bytes.  Loading a journal is
therefore an *analysis pass*, not a trusting parse:

* a **torn tail** — invalid bytes after the last decodable commit
  (truncated or garbled final frame, the signature of dying mid-write)
  — is truncated away with a :class:`~repro.errors.TornTailWarning`,
  and recovery proceeds from the intact prefix;
* **mid-log corruption** — a frame that fails its checksum while a
  *committed* frame follows it — is unrecoverable without losing
  committed work, so it raises :class:`~repro.errors.RecoveryError`
  naming the expected LSN and byte offset.

Files without the header are legacy plain-JSONL (v1) journals; they
replay with the same torn-tail analysis and keep appending in their own
format, so a pre-framing journal never becomes a mixed-format file.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import (
    FaultInjectedError,
    RecoveryError,
    TornTailWarning,
    WALError,
)
from repro.obs.metrics import NULL_COUNTER, NULL_HISTOGRAM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults import FaultContext, FaultInjector
    from repro.obs.metrics import MetricsRegistry

# Record operation names.
OP_BEGIN = "begin"
OP_COMMIT = "commit"
OP_ABORT = "abort"
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_CREATE_TABLE = "create_table"
OP_DROP_TABLE = "drop_table"
OP_CREATE_INDEX = "create_index"
OP_CREATE_TRIGGER = "create_trigger"
OP_DROP_TRIGGER = "drop_trigger"
OP_CHECKPOINT = "checkpoint"

DML_OPS = frozenset({OP_INSERT, OP_UPDATE, OP_DELETE})
DDL_OPS = frozenset(
    {
        OP_CREATE_TABLE,
        OP_DROP_TABLE,
        OP_CREATE_INDEX,
        OP_CREATE_TRIGGER,
        OP_DROP_TRIGGER,
    }
)


@dataclass(frozen=True)
class LogRecord:
    """One journal entry.

    ``before``/``after`` carry full row images for DML; ``meta`` carries
    schema payloads for DDL and the table snapshot for checkpoints.
    ``ts`` is the database-clock time the record was written — journal
    miners use it as the change's event time.
    """

    lsn: int
    txid: int
    op: str
    table: str | None = None
    rowid: int | None = None
    before: dict[str, Any] | None = None
    after: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    ts: float = 0.0

    def to_json(self) -> str:
        """Serialize for the on-disk journal.

        Values must round-trip through JSON *faithfully*: stringifying
        unserializable values (``default=str``) would let recovery
        resurrect rows whose types silently differ from what was
        committed, so unserializable values are rejected instead.
        """

        def reject(value: Any) -> Any:
            raise WALError(
                f"cannot journal: value of type {type(value).__name__} "
                f"({value!r}) does not round-trip through JSON",
                lsn=self.lsn,
                op=self.op,
                table=self.table,
                rowid=self.rowid,
            )

        return json.dumps(
            {
                "lsn": self.lsn,
                "txid": self.txid,
                "op": self.op,
                "table": self.table,
                "rowid": self.rowid,
                "before": self.before,
                "after": self.after,
                "meta": self.meta,
                "ts": self.ts,
            },
            separators=(",", ":"),
            default=reject,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"corrupt WAL record: {exc}") from None
        try:
            return cls(
                lsn=data["lsn"],
                txid=data["txid"],
                op=data["op"],
                table=data.get("table"),
                rowid=data.get("rowid"),
                before=data.get("before"),
                after=data.get("after"),
                meta=data.get("meta") or {},
                ts=data.get("ts", 0.0),
            )
        except (KeyError, TypeError) as exc:
            raise RecoveryError(f"corrupt WAL record: {exc!r}") from None


# --------------------------------------------------------------------------
# On-disk framing (version 2) and the load-time analysis pass
# --------------------------------------------------------------------------

WAL_MAGIC = "%REPRO-WAL"
WAL_FORMAT_VERSION = 2
WAL_HEADER = f"{WAL_MAGIC} {WAL_FORMAT_VERSION}\n"


def encode_frame(payload: str) -> str:
    """Frame one JSON record: ``<length>:<crc32-hex>:<json>\\n``."""
    raw = payload.encode("utf-8")
    return f"{len(raw)}:{zlib.crc32(raw) & 0xFFFFFFFF:08x}:{payload}\n"


def _decode_frame(line: bytes, version: int) -> tuple[LogRecord | None, str]:
    """Decode one journal line; returns ``(record, "")`` or
    ``(None, reason)``.  Never raises — the scan decides what an
    invalid frame *means* from its position in the file."""
    if version >= 2:
        parts = line.split(b":", 2)
        if len(parts) != 3:
            return None, "malformed frame (missing length/crc prefix)"
        try:
            length = int(parts[0])
            crc = int(parts[1], 16)
        except ValueError:
            return None, "malformed frame (non-numeric length/crc)"
        payload = parts[2]
        if len(payload) != length:
            return None, (
                f"frame length mismatch (header says {length} bytes, "
                f"found {len(payload)})"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None, "frame checksum mismatch"
    else:
        payload = line
    try:
        return LogRecord.from_json(payload.decode("utf-8")), ""
    except (RecoveryError, UnicodeDecodeError):
        return None, "frame payload is not a valid record"


def iter_frames(
    data: bytes,
) -> Iterator[tuple[int, int, LogRecord | None]]:
    """Yield ``(start_offset, end_offset, record_or_None)`` for every
    line of a journal file (header excluded).  Used by the load-time
    scan and by fault tooling that needs frame byte positions."""
    version = 1
    position = 0
    header = WAL_HEADER.encode("utf-8")
    if data.startswith(header):
        version = 2
        position = len(header)
    while position < len(data):
        newline = data.find(b"\n", position)
        end = newline if newline != -1 else len(data)
        line = data[position:end]
        next_position = end + 1 if newline != -1 else len(data)
        if line.strip():
            record, _ = _decode_frame(line, version)
            yield position, next_position, record
        position = next_position


@dataclass
class WalLoadReport:
    """What the load-time analysis pass concluded about a journal file."""

    version: int
    records: list[LogRecord] = field(default_factory=list)
    good_bytes: int = 0  # file is valid up to (exclusive) this offset
    torn: bool = False
    torn_reason: str = ""
    dropped_bytes: int = 0


def scan_wal_bytes(data: bytes) -> WalLoadReport:
    """Analyze a journal file's bytes into the recoverable prefix.

    Decodes frames in order.  At the first invalid frame, the remainder
    of the file decides the verdict: if any *later* frame decodes to a
    commit record, committed work lies beyond the damage — mid-log
    corruption, raise :class:`RecoveryError` with the expected LSN and
    byte offset.  Otherwise everything from the invalid frame on is a
    torn tail (at worst uncommitted work written mid-crash) and is
    reported for truncation.
    """
    version = 1
    offset = 0
    header = WAL_HEADER.encode("utf-8")
    if data.startswith(header):
        version = 2
        offset = len(header)
    report = WalLoadReport(version=version, good_bytes=offset)
    position = offset
    while position < len(data):
        newline = data.find(b"\n", position)
        end = newline if newline != -1 else len(data)
        line = data[position:end]
        next_position = end + 1 if newline != -1 else len(data)
        if not line.strip():
            position = next_position
            continue
        record, reason = _decode_frame(line, version)
        if record is None:
            _classify_bad_frame(
                data, position, next_position, version, reason, report
            )
            return report
        report.records.append(record)
        report.good_bytes = next_position
        position = next_position
    return report


def _classify_bad_frame(
    data: bytes,
    bad_offset: int,
    resume: int,
    version: int,
    reason: str,
    report: WalLoadReport,
) -> None:
    """Torn tail or mid-log corruption?  Decided by what follows."""
    expected_lsn = report.records[-1].lsn + 1 if report.records else 1
    position = resume
    while position < len(data):
        newline = data.find(b"\n", position)
        end = newline if newline != -1 else len(data)
        line = data[position:end]
        position = end + 1 if newline != -1 else len(data)
        if not line.strip():
            continue
        record, _ = _decode_frame(line, version)
        if record is not None and record.op == OP_COMMIT:
            # A committed transaction lies beyond the damage: silently
            # truncating here would lose committed work.  Fail loudly.
            raise RecoveryError(
                f"mid-log corruption: {reason}, but a committed record "
                "follows — refusing to truncate committed work",
                lsn=expected_lsn,
                byte_offset=bad_offset,
            )
    report.torn = True
    report.torn_reason = reason
    report.dropped_bytes = len(data) - report.good_bytes


class WriteAheadLog:
    """Append-only journal with an explicit durability horizon.

    In-memory by default; pass ``path`` to also persist records to a
    JSON-lines file on each :meth:`flush` (used by the cross-process
    recovery tests).

    **Group commit** (``group_commit_size`` / ``group_commit_window``):
    with ``sync_policy="commit"`` the database calls
    :meth:`commit_point` at every commit.  By default each commit
    flushes immediately (one fsync per transaction — fully durable).
    Raising ``group_commit_size`` to N coalesces flushes so one fsync
    covers up to N committed transactions; ``group_commit_window``
    additionally bounds how long (in clock seconds) the oldest pending
    commit may wait before a flush is forced.  The trade is explicit
    and bounded: a crash may lose at most the last ``N-1`` committed
    transactions (call :meth:`flush` to drain the tail at any barrier).
    """

    def __init__(
        self,
        path: str | None = None,
        sync_policy: str = "commit",
        clock: Any = None,
        *,
        group_commit_size: int = 1,
        group_commit_window: float | None = None,
        faults: "FaultInjector | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if sync_policy not in ("commit", "none", "always"):
            raise ValueError(f"unknown sync_policy {sync_policy!r}")
        if group_commit_size < 1:
            raise ValueError("group_commit_size must be >= 1")
        self.path = path
        self.sync_policy = sync_policy
        self.clock = clock  # optional; records get ts=0.0 without one
        self.faults = faults  # optional fault injector (see repro.faults)
        self.group_commit_size = group_commit_size
        self.group_commit_window = group_commit_window
        self._pending_commits = 0
        self._oldest_pending_ts: float | None = None
        self._records: list[LogRecord] = []
        # JSON lines pre-rendered at append time (file-backed WAL only):
        # validates serializability *before* the record enters the log
        # and moves encoding cost out of the flush critical section.
        self._encoded: dict[int, str] = {}
        self._next_lsn = 1
        self._durable_count = 0
        self.flush_count = 0  # observable fsync count, used by benchmarks
        # New journals use the framed format; attaching to an existing
        # file adopts its version so one file never mixes formats.
        self._format_version = WAL_FORMAT_VERSION
        self.load_report: WalLoadReport | None = None
        # Instruments resolved once; each hot-path touch is one attribute
        # load plus an add (no-ops when no registry is attached).
        self.metrics = metrics
        if metrics is not None:
            self._m_appends = metrics.counter("wal.appends")
            self._m_fsyncs = metrics.counter("wal.fsyncs")
            self._m_bytes = metrics.counter("wal.bytes")
            self._m_batch = metrics.histogram("wal.group_commit_batch")
        else:
            self._m_appends = NULL_COUNTER
            self._m_fsyncs = NULL_COUNTER
            self._m_bytes = NULL_COUNTER
            self._m_batch = NULL_HISTOGRAM
        if path and os.path.exists(path):
            self._load_existing(path)

    def _load_existing(self, path: str) -> None:
        with open(path, "rb") as handle:
            data = handle.read()
        report = scan_wal_bytes(data)  # raises on mid-log corruption
        self._format_version = report.version
        self.load_report = report
        self._records = report.records
        if report.torn:
            warnings.warn(
                f"journal {path!r}: truncating torn tail "
                f"({report.dropped_bytes} bytes after LSN "
                f"{report.records[-1].lsn if report.records else 0}: "
                f"{report.torn_reason})",
                TornTailWarning,
                stacklevel=3,
            )
            with open(path, "r+b") as handle:
                handle.truncate(report.good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._durable_count = len(self._records)
        if self._records:
            self._next_lsn = self._records[-1].lsn + 1

    def _fire(self, name: str, **site: Any) -> "FaultContext | None":
        """Consult the fault injector at failpoint ``name`` (no-op when
        none is attached — the common case costs one attribute read)."""
        if self.faults is None:
            return None
        return self.faults.fire(name, wal=self, **site)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def first_lsn(self) -> int:
        """LSN of the oldest *retained* record — greater than 1 once
        :meth:`truncate_before` has reclaimed a prefix.  An empty (or
        fully truncated) journal reports ``last_lsn + 1``: nothing is
        retained, so history reaches back only to the tail."""
        if self._records:
            return self._records[0].lsn
        return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        """LSN of the last record guaranteed to survive a crash."""
        if self._durable_count == 0:
            return 0
        return self._records[self._durable_count - 1].lsn

    def append(
        self,
        txid: int,
        op: str,
        *,
        table: str | None = None,
        rowid: int | None = None,
        before: dict[str, Any] | None = None,
        after: dict[str, Any] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> LogRecord:
        """Append one record; returns it with its assigned LSN."""
        self._fire("wal.append", op=op, txid=txid, table=table, rowid=rowid)
        self._m_appends.inc()
        record = LogRecord(
            lsn=self._next_lsn,
            txid=txid,
            op=op,
            table=table,
            rowid=rowid,
            before=before,
            after=after,
            meta=meta or {},
            ts=self.clock.now() if self.clock is not None else 0.0,
        )
        if self.path is not None:
            # Append-time validation: a record that cannot be journaled
            # faithfully must fail *now*, inside the owning transaction,
            # not later at an unrelated commit's flush.
            self._encoded[record.lsn] = record.to_json()
        self._next_lsn += 1
        self._records.append(record)
        if self.sync_policy == "always":
            self.flush()
        return record

    def commit_point(self) -> None:
        """Register one committed transaction; flush per group-commit
        policy (called by the database when ``sync_policy="commit"``)."""
        self._pending_commits += 1
        if self._oldest_pending_ts is None and self.clock is not None:
            self._oldest_pending_ts = self.clock.now()
        if self._pending_commits >= self.group_commit_size:
            self.flush()
        elif (
            self.group_commit_window is not None
            and self._oldest_pending_ts is not None
            and self.clock is not None
            and self.clock.now() - self._oldest_pending_ts
            >= self.group_commit_window
        ):
            self.flush()

    @property
    def pending_commits(self) -> int:
        """Committed transactions not yet covered by a flush."""
        return self._pending_commits

    def _frame_for(self, record: LogRecord) -> str:
        payload = self._encoded.pop(record.lsn, None) or record.to_json()
        if self._format_version >= 2:
            return encode_frame(payload)
        return payload + "\n"

    def flush(self) -> None:
        """Make every appended record durable (simulated fsync).

        Failpoints: ``wal.pre_flush`` before any I/O, ``wal.post_flush``
        after the tail became durable, and ``wal.flush.torn`` — a
        :func:`repro.faults.torn_write` action armed there makes this
        flush write only part (or a corrupted copy) of its final frame
        and raise, modeling a crash mid-write; the in-memory instance
        must then be abandoned and recovery run from the file.
        """
        batch = self._pending_commits
        self._pending_commits = 0
        self._oldest_pending_ts = None
        if self._durable_count == len(self._records):
            return
        self._fire("wal.pre_flush")
        if self.path:
            frames = [
                self._frame_for(record)
                for record in self._records[self._durable_count :]
            ]
            torn = self._fire("wal.flush.torn", frames=frames)
            with open(self.path, "ab") as handle:
                if handle.tell() == 0 and self._format_version >= 2:
                    handle.write(WAL_HEADER.encode("utf-8"))
                data = "".join(frames).encode("utf-8")
                if torn is not None and torn.result is not None:
                    data = self._tear(data, frames[-1], torn.result)
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            self._m_bytes.inc(len(data))
            if torn is not None and torn.result is not None:
                raise FaultInjectedError(
                    f"torn write ({torn.result['mode']}) during flush",
                    failpoint="wal.flush.torn",
                )
        self._durable_count = len(self._records)
        self.flush_count += 1
        self._m_fsyncs.inc()
        if batch:
            # Commits covered by this one fsync — the group-commit
            # amortization EXP-2 sweeps; 1 means no coalescing happened.
            self._m_batch.observe(batch)
        self._fire("wal.post_flush")

    @staticmethod
    def _tear(data: bytes, last_frame: str, directive: dict[str, Any]) -> bytes:
        """Apply a torn-write directive to the batch about to be written."""
        last_length = len(last_frame.encode("utf-8"))
        if directive["mode"] == "truncate":
            # Default tear point: halfway through the final frame.
            drop = directive.get("drop_bytes") or max(1, last_length // 2)
            drop = min(drop, len(data))
            return data[: len(data) - drop]
        # "corrupt": full length, but one byte inside the final frame's
        # payload is flipped (never its newline — line structure holds).
        target = len(data) - max(2, last_length // 2)
        return data[:target] + bytes([data[target] ^ 0x55]) + data[target + 1 :]

    def crash(self) -> list[LogRecord]:
        """Simulate a crash: drop non-durable records and return the
        durable prefix (what recovery will see)."""
        self._records = self._records[: self._durable_count]
        self._encoded = {}
        self._pending_commits = 0
        self._oldest_pending_ts = None
        if self._records:
            self._next_lsn = self._records[-1].lsn + 1
        else:
            self._next_lsn = 1
        return list(self._records)

    def records(self, *, durable_only: bool = False) -> list[LogRecord]:
        if durable_only:
            return list(self._records[: self._durable_count])
        return list(self._records)

    def records_from(self, lsn: int) -> Iterator[LogRecord]:
        """Yield records with LSN strictly greater than ``lsn``."""
        # Records are LSN-ordered; binary search would work but the
        # journal reader always resumes near the tail, so scan from an
        # estimated offset.
        start = min(max(lsn, 0), len(self._records))
        while start > 0 and self._records[start - 1].lsn > lsn:
            start -= 1
        for record in self._records[start:]:
            if record.lsn > lsn:
                yield record

    def truncate_before(self, lsn: int) -> int:
        """Drop records with LSN < ``lsn`` (post-checkpoint log reclaim).
        Returns the number of records dropped."""
        kept = [record for record in self._records if record.lsn >= lsn]
        dropped = len(self._records) - len(kept)
        self._records = kept
        self._durable_count = max(0, self._durable_count - dropped)
        if self.path:
            with open(self.path, "w", encoding="utf-8") as handle:
                if self._format_version >= 2:
                    handle.write(WAL_HEADER)
                for record in self._records[: self._durable_count]:
                    payload = record.to_json()
                    if self._format_version >= 2:
                        handle.write(encode_frame(payload))
                    else:
                        handle.write(payload + "\n")
        return dropped


class JournalReader:
    """Cursor over the committed suffix of the journal.

    This is the substrate for journal-based ("log mining") event
    capture: the reader remembers its position and, on each poll,
    returns DML records of transactions whose commit record it has seen.
    Records of uncommitted or aborted transactions are never surfaced.
    """

    def __init__(self, wal: WriteAheadLog, start_lsn: int = 0) -> None:
        self._wal = wal
        self._position = start_lsn
        # DML records of transactions whose fate we have not yet seen.
        self._pending: dict[int, list[LogRecord]] = {}

    @property
    def position(self) -> int:
        """LSN up to which this reader has consumed the journal."""
        return self._position

    def poll(self) -> list[LogRecord]:
        """Return newly committed DML records, in commit order."""
        committed: list[LogRecord] = []
        for record in self._wal.records_from(self._position):
            self._position = record.lsn
            if record.op in DML_OPS or record.op in DDL_OPS:
                self._pending.setdefault(record.txid, []).append(record)
            elif record.op == OP_COMMIT:
                committed.extend(self._pending.pop(record.txid, []))
            elif record.op == OP_ABORT:
                self._pending.pop(record.txid, None)
        return committed
