"""Write-ahead log — the database *journal*.

The WAL serves two masters:

1. **Durability / recovery** (paper §2.2.b.ii.3): every mutation is
   logged before it is applied; on crash, committed work is replayed
   from the durable prefix of the log (see :mod:`repro.db.recovery`).
2. **Journal-based event capture** (paper §2.2.a.ii): an asynchronous
   *log miner* reads committed records through :class:`JournalReader`
   and turns them into events without adding any work to the foreground
   transaction path — the architectural contrast benchmarked in EXP-1.

Durability is modeled explicitly so crash tests are honest: records
appended but not yet flushed are lost by :meth:`WriteAheadLog.crash`.
With ``sync_policy="commit"`` (the default) the database flushes on
every commit, so committed work always survives; with
``sync_policy="none"`` flushing is manual and a crash may lose
committed-but-unflushed transactions — the classic trade the tutorial's
"performance vs recoverability" bullet points at.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import RecoveryError, WALError

# Record operation names.
OP_BEGIN = "begin"
OP_COMMIT = "commit"
OP_ABORT = "abort"
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_CREATE_TABLE = "create_table"
OP_DROP_TABLE = "drop_table"
OP_CREATE_INDEX = "create_index"
OP_CREATE_TRIGGER = "create_trigger"
OP_DROP_TRIGGER = "drop_trigger"
OP_CHECKPOINT = "checkpoint"

DML_OPS = frozenset({OP_INSERT, OP_UPDATE, OP_DELETE})
DDL_OPS = frozenset(
    {
        OP_CREATE_TABLE,
        OP_DROP_TABLE,
        OP_CREATE_INDEX,
        OP_CREATE_TRIGGER,
        OP_DROP_TRIGGER,
    }
)


@dataclass(frozen=True)
class LogRecord:
    """One journal entry.

    ``before``/``after`` carry full row images for DML; ``meta`` carries
    schema payloads for DDL and the table snapshot for checkpoints.
    ``ts`` is the database-clock time the record was written — journal
    miners use it as the change's event time.
    """

    lsn: int
    txid: int
    op: str
    table: str | None = None
    rowid: int | None = None
    before: dict[str, Any] | None = None
    after: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    ts: float = 0.0

    def to_json(self) -> str:
        """Serialize for the on-disk journal.

        Values must round-trip through JSON *faithfully*: stringifying
        unserializable values (``default=str``) would let recovery
        resurrect rows whose types silently differ from what was
        committed, so unserializable values are rejected instead.
        """

        def reject(value: Any) -> Any:
            raise WALError(
                f"cannot journal {self.op} on {self.table!r} rowid "
                f"{self.rowid}: value of type {type(value).__name__} "
                f"({value!r}) does not round-trip through JSON"
            )

        return json.dumps(
            {
                "lsn": self.lsn,
                "txid": self.txid,
                "op": self.op,
                "table": self.table,
                "rowid": self.rowid,
                "before": self.before,
                "after": self.after,
                "meta": self.meta,
                "ts": self.ts,
            },
            separators=(",", ":"),
            default=reject,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"corrupt WAL record: {exc}") from None
        return cls(
            lsn=data["lsn"],
            txid=data["txid"],
            op=data["op"],
            table=data.get("table"),
            rowid=data.get("rowid"),
            before=data.get("before"),
            after=data.get("after"),
            meta=data.get("meta") or {},
            ts=data.get("ts", 0.0),
        )


class WriteAheadLog:
    """Append-only journal with an explicit durability horizon.

    In-memory by default; pass ``path`` to also persist records to a
    JSON-lines file on each :meth:`flush` (used by the cross-process
    recovery tests).

    **Group commit** (``group_commit_size`` / ``group_commit_window``):
    with ``sync_policy="commit"`` the database calls
    :meth:`commit_point` at every commit.  By default each commit
    flushes immediately (one fsync per transaction — fully durable).
    Raising ``group_commit_size`` to N coalesces flushes so one fsync
    covers up to N committed transactions; ``group_commit_window``
    additionally bounds how long (in clock seconds) the oldest pending
    commit may wait before a flush is forced.  The trade is explicit
    and bounded: a crash may lose at most the last ``N-1`` committed
    transactions (call :meth:`flush` to drain the tail at any barrier).
    """

    def __init__(
        self,
        path: str | None = None,
        sync_policy: str = "commit",
        clock: Any = None,
        *,
        group_commit_size: int = 1,
        group_commit_window: float | None = None,
    ) -> None:
        if sync_policy not in ("commit", "none", "always"):
            raise ValueError(f"unknown sync_policy {sync_policy!r}")
        if group_commit_size < 1:
            raise ValueError("group_commit_size must be >= 1")
        self.path = path
        self.sync_policy = sync_policy
        self.clock = clock  # optional; records get ts=0.0 without one
        self.group_commit_size = group_commit_size
        self.group_commit_window = group_commit_window
        self._pending_commits = 0
        self._oldest_pending_ts: float | None = None
        self._records: list[LogRecord] = []
        # JSON lines pre-rendered at append time (file-backed WAL only):
        # validates serializability *before* the record enters the log
        # and moves encoding cost out of the flush critical section.
        self._encoded: dict[int, str] = {}
        self._next_lsn = 1
        self._durable_count = 0
        self.flush_count = 0  # observable fsync count, used by benchmarks
        if path and os.path.exists(path):
            self._load_existing(path)

    def _load_existing(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    self._records.append(LogRecord.from_json(line))
        self._durable_count = len(self._records)
        if self._records:
            self._next_lsn = self._records[-1].lsn + 1

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """LSN of the last record guaranteed to survive a crash."""
        if self._durable_count == 0:
            return 0
        return self._records[self._durable_count - 1].lsn

    def append(
        self,
        txid: int,
        op: str,
        *,
        table: str | None = None,
        rowid: int | None = None,
        before: dict[str, Any] | None = None,
        after: dict[str, Any] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> LogRecord:
        """Append one record; returns it with its assigned LSN."""
        record = LogRecord(
            lsn=self._next_lsn,
            txid=txid,
            op=op,
            table=table,
            rowid=rowid,
            before=before,
            after=after,
            meta=meta or {},
            ts=self.clock.now() if self.clock is not None else 0.0,
        )
        if self.path is not None:
            # Append-time validation: a record that cannot be journaled
            # faithfully must fail *now*, inside the owning transaction,
            # not later at an unrelated commit's flush.
            self._encoded[record.lsn] = record.to_json()
        self._next_lsn += 1
        self._records.append(record)
        if self.sync_policy == "always":
            self.flush()
        return record

    def commit_point(self) -> None:
        """Register one committed transaction; flush per group-commit
        policy (called by the database when ``sync_policy="commit"``)."""
        self._pending_commits += 1
        if self._oldest_pending_ts is None and self.clock is not None:
            self._oldest_pending_ts = self.clock.now()
        if self._pending_commits >= self.group_commit_size:
            self.flush()
        elif (
            self.group_commit_window is not None
            and self._oldest_pending_ts is not None
            and self.clock is not None
            and self.clock.now() - self._oldest_pending_ts
            >= self.group_commit_window
        ):
            self.flush()

    @property
    def pending_commits(self) -> int:
        """Committed transactions not yet covered by a flush."""
        return self._pending_commits

    def flush(self) -> None:
        """Make every appended record durable (simulated fsync)."""
        self._pending_commits = 0
        self._oldest_pending_ts = None
        if self._durable_count == len(self._records):
            return
        if self.path:
            with open(self.path, "a", encoding="utf-8") as handle:
                for record in self._records[self._durable_count :]:
                    line = self._encoded.pop(record.lsn, None)
                    handle.write((line or record.to_json()) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self._durable_count = len(self._records)
        self.flush_count += 1

    def crash(self) -> list[LogRecord]:
        """Simulate a crash: drop non-durable records and return the
        durable prefix (what recovery will see)."""
        self._records = self._records[: self._durable_count]
        self._encoded = {}
        self._pending_commits = 0
        self._oldest_pending_ts = None
        if self._records:
            self._next_lsn = self._records[-1].lsn + 1
        else:
            self._next_lsn = 1
        return list(self._records)

    def records(self, *, durable_only: bool = False) -> list[LogRecord]:
        if durable_only:
            return list(self._records[: self._durable_count])
        return list(self._records)

    def records_from(self, lsn: int) -> Iterator[LogRecord]:
        """Yield records with LSN strictly greater than ``lsn``."""
        # Records are LSN-ordered; binary search would work but the
        # journal reader always resumes near the tail, so scan from an
        # estimated offset.
        start = min(max(lsn, 0), len(self._records))
        while start > 0 and self._records[start - 1].lsn > lsn:
            start -= 1
        for record in self._records[start:]:
            if record.lsn > lsn:
                yield record

    def truncate_before(self, lsn: int) -> int:
        """Drop records with LSN < ``lsn`` (post-checkpoint log reclaim).
        Returns the number of records dropped."""
        kept = [record for record in self._records if record.lsn >= lsn]
        dropped = len(self._records) - len(kept)
        self._records = kept
        self._durable_count = max(0, self._durable_count - dropped)
        if self.path:
            with open(self.path, "w", encoding="utf-8") as handle:
                for record in self._records[: self._durable_count]:
                    handle.write(record.to_json() + "\n")
        return dropped


class JournalReader:
    """Cursor over the committed suffix of the journal.

    This is the substrate for journal-based ("log mining") event
    capture: the reader remembers its position and, on each poll,
    returns DML records of transactions whose commit record it has seen.
    Records of uncommitted or aborted transactions are never surfaced.
    """

    def __init__(self, wal: WriteAheadLog, start_lsn: int = 0) -> None:
        self._wal = wal
        self._position = start_lsn
        # DML records of transactions whose fate we have not yet seen.
        self._pending: dict[int, list[LogRecord]] = {}

    @property
    def position(self) -> int:
        """LSN up to which this reader has consumed the journal."""
        return self._position

    def poll(self) -> list[LogRecord]:
        """Return newly committed DML records, in commit order."""
        committed: list[LogRecord] = []
        for record in self._wal.records_from(self._position):
            self._position = record.lsn
            if record.op in DML_OPS or record.op in DDL_OPS:
                self._pending.setdefault(record.txid, []).append(record)
            elif record.op == OP_COMMIT:
                committed.extend(self._pending.pop(record.txid, []))
            elif record.op == OP_ABORT:
                self._pending.pop(record.txid, None)
        return committed
