"""The database facade: connections, transactions, DML core, recovery.

Every mutation — whether issued as SQL or through the programmatic API —
funnels through :meth:`Database.insert_row` / :meth:`update_row` /
:meth:`delete_row`, which enforce the write-ahead discipline:

    lock → BEFORE triggers → constraint checks → journal → apply →
    undo-log → AFTER triggers

Isolation is read-committed via table-granularity locks: writers hold a
table-exclusive lock until commit; readers take a short shared lock, so
uncommitted data is never visible.  This is deliberately coarse — the
tutorial's arguments are about architecture (where capture and rule
evaluation happen), not about fine-grained concurrency control.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.clock import Clock, WallClock
from repro.db.catalog import Catalog
from repro.db.engine import StorageEngine
from repro.db.expr import (
    Expression,
    compile_expression,
    expression_from_dict,
    expression_to_dict,
)
from repro.db.index import HashIndex
from repro.db.recovery import analyze, schema_from_dict, schema_to_dict, verify_redo_record
from repro.db.schema import Column, TableSchema
from repro.db.sql import executor as sql_executor
from repro.db.sql.ast import (
    BeginStatement,
    CommitStatement,
    CreateTable as CreateTableStmt,
    CreateTrigger as CreateTriggerStmt,
    RollbackStatement,
    SavepointStatement,
)
from repro.db.sql.cache import (
    DEFAULT_CAPACITY as STATEMENT_CACHE_CAPACITY,
    PreparedStatement,
    StatementCache,
)
from repro.db.sql.executor import Result
from repro.db.storage import HeapTable
from repro.db.transactions import (
    LockManager,
    LockMode,
    Transaction,
    TransactionManager,
)
from repro.db.triggers import (
    Trigger,
    TriggerContext,
    TriggerEvent,
    TriggerTiming,
)
from repro.db.types import type_by_name
from repro.db.wal import (
    OP_ABORT,
    OP_BEGIN,
    OP_CHECKPOINT,
    OP_COMMIT,
    OP_CREATE_INDEX,
    OP_CREATE_TABLE,
    OP_DELETE,
    OP_DROP_TABLE,
    OP_INSERT,
    OP_UPDATE,
    JournalReader,
    WriteAheadLog,
)
from repro.errors import (
    ConstraintViolation,
    DatabaseError,
    RecoveryError,
    SchemaError,
    TransactionError,
    TriggerError,
)
from repro.obs.metrics import MetricsRegistry

from repro.db.wal import OP_CREATE_TRIGGER, OP_DROP_TRIGGER


class Connection:
    """A session against one database.

    Without an explicit transaction each statement autocommits; after
    :meth:`begin` (or SQL ``BEGIN``) statements share the transaction
    until ``COMMIT``/``ROLLBACK``.
    """

    def __init__(self, db: "Database") -> None:
        self.db = db
        self.transaction: Transaction | None = None

    # -- transaction control ------------------------------------------------

    def begin(self) -> Transaction:
        if self.transaction is not None and self.transaction.is_active:
            raise TransactionError("transaction already open on this connection")
        self.transaction = self.db.transactions.begin()
        return self.transaction

    def commit(self) -> None:
        if self.transaction is None:
            raise TransactionError("no open transaction to commit")
        # Detach before finishing: after-commit listeners may re-enter
        # this connection (e.g. query-notification captures re-running
        # their SELECT) and must see it idle.
        transaction = self.transaction
        self.transaction = None
        try:
            self.db.transactions.commit(transaction)
        except BaseException:
            if transaction.is_active:
                self.transaction = transaction
            raise

    def rollback(self) -> None:
        if self.transaction is None:
            raise TransactionError("no open transaction to roll back")
        transaction = self.transaction
        self.transaction = None
        try:
            self.db.transactions.rollback(transaction)
        except BaseException:
            if transaction.is_active:
                self.transaction = transaction
            raise

    def savepoint(self, name: str) -> None:
        if self.transaction is None:
            raise TransactionError("SAVEPOINT requires an open transaction")
        self.transaction.savepoint(name)

    def rollback_to(self, name: str) -> None:
        if self.transaction is None:
            raise TransactionError("ROLLBACK TO requires an open transaction")
        self.transaction.rollback_to_savepoint(name)

    def __enter__(self) -> "Connection":
        self.begin()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.transaction is not None and self.transaction.is_active:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()

    # -- statement execution ---------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        *,
        _normalized: str | None = None,
    ) -> Result:
        """Execute one SQL statement, optionally binding ``?`` params.

        Statement text is resolved through the database's shared
        statement cache: repeated statements (same normalized text,
        same schema version) skip lexing and parsing entirely.
        """
        entry = self.db.statement_cache.lookup(
            sql, self.db.schema_version, normalized=_normalized
        )
        statement = entry.bind(params)
        if isinstance(statement, BeginStatement):
            self.begin()
            return Result()
        if isinstance(statement, CommitStatement):
            self.commit()
            return Result()
        if isinstance(statement, RollbackStatement):
            if statement.savepoint is not None:
                self.rollback_to(statement.savepoint)
            else:
                self.rollback()
            return Result()
        if isinstance(statement, SavepointStatement):
            self.savepoint(statement.name)
            return Result()

        implicit = self.transaction is None
        if implicit:
            self.begin()
        try:
            result = sql_executor.execute(self.db, self, statement)
        except BaseException:
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return result

    def query(
        self, sql: str, params: Sequence[Any] | None = None
    ) -> list[dict[str, Any]]:
        """Execute and return rows (convenience for SELECT)."""
        return self.execute(sql, params).rows

    def require_transaction(self) -> Transaction:
        if self.transaction is None or not self.transaction.is_active:
            raise TransactionError("operation requires an open transaction")
        return self.transaction


class Database(StorageEngine):
    """An embedded database instance — the reference
    :class:`~repro.db.engine.StorageEngine`.

    In the sharded deployment (:mod:`repro.shard`) each worker process
    owns one of these; everything above the engine interface is shared
    between the single-process and sharded paths.

    Args:
        path: optional WAL file path; when set, the journal persists
            across processes and ``Database(path=...)`` recovers from it.
        sync_policy: ``"commit"`` (flush journal on every commit,
            default), ``"always"`` (flush on every record), or
            ``"none"`` (flush only on demand — fastest, may lose
            committed work on crash).
        group_commit_size: with ``sync_policy="commit"``, coalesce
            journal flushes so one fsync covers up to this many
            committed transactions (default 1 = flush every commit).
        group_commit_window: optional bound, in clock seconds, on how
            long the oldest unflushed commit may wait for its group.
        clock: time source used for default timestamps.
        faults: optional :class:`repro.faults.FaultInjector`; forwarded
            to the WAL and visible to brokers/delivery managers built
            on this database, so one injector arms the whole pipeline.
        metrics: optional shared :class:`repro.obs.MetricsRegistry`;
            when omitted the database builds its own (driven by its
            clock).  Pass one registry to several databases/brokers to
            get a single pipeline-wide snapshot.
        metrics_enabled: build the owned registry disabled (all hot-path
            instruments become no-ops; error accounting stays live).
            Ignored when an explicit ``metrics`` registry is passed.
    """

    def __init__(
        self,
        path: str | None = None,
        *,
        sync_policy: str = "commit",
        group_commit_size: int = 1,
        group_commit_window: float | None = None,
        lock_timeout: float = 5.0,
        clock: Clock | None = None,
        faults: Any = None,
        statement_cache_size: int = STATEMENT_CACHE_CAPACITY,
        metrics: MetricsRegistry | None = None,
        metrics_enabled: bool = True,
    ) -> None:
        self.clock = clock or WallClock()
        self.catalog = Catalog()
        # Shared statement cache (the "cursor cache"): parse results are
        # keyed by (normalized SQL, schema_version); every DDL bumps the
        # version so stale plans can never be served.
        self.schema_version = 0
        self.statement_cache = StatementCache(capacity=statement_cache_size)
        self._faults = faults
        self.obs = metrics or MetricsRegistry(
            clock=self.clock, enabled=metrics_enabled
        )
        self.wal = WriteAheadLog(
            path=path,
            sync_policy=sync_policy,
            clock=self.clock,
            group_commit_size=group_commit_size,
            group_commit_window=group_commit_window,
            faults=faults,
            metrics=self.obs,
        )
        self.locks = LockManager(timeout=lock_timeout)
        self.transactions = TransactionManager(self.locks)
        self.transactions.on_commit = self._on_commit
        self.transactions.on_abort = self._on_abort
        self.transactions.after_commit = self._after_commit
        self.transactions.after_abort = self._after_abort
        self._trigger_functions: dict[str, Callable[[TriggerContext], Any]] = {}
        self._commit_listeners: list[Callable[[Transaction], None]] = []
        self._abort_listeners: list[Callable[[Transaction], None]] = []
        self._default_connection: Connection | None = None
        self._mutex = threading.RLock()
        self.statistics = {
            "inserts": 0,
            "updates": 0,
            "deletes": 0,
            "commits": 0,
            "rollbacks": 0,
        }
        if path and len(self.wal):
            self._rebuild_from_records(self.wal.records(durable_only=True))

    def metrics(self) -> dict[str, Any]:
        """One coherent observability snapshot for this database.

        Merges the shared registry's instruments with the statement
        cache's hit/miss accounting and the legacy ``statistics``
        counters, so callers get every number from one place.
        """
        snapshot = self.obs.snapshot()
        cache = self.statement_cache.stats
        for key, value in cache.items():
            snapshot["counters"][f"statement_cache.{key}"] = value
        snapshot["gauges"]["statement_cache.hit_rate"] = (
            self.statement_cache.hit_rate
        )
        for key, value in self.statistics.items():
            snapshot["counters"][f"db.{key}"] = value
        snapshot["counters"].setdefault("wal.fsyncs", 0)
        snapshot["counters"]["wal.fsyncs"] = max(
            snapshot["counters"]["wal.fsyncs"], self.wal.flush_count
        )
        return snapshot

    @property
    def faults(self) -> Any:
        """The attached fault injector (or ``None``)."""
        return self._faults

    @faults.setter
    def faults(self, injector: Any) -> None:
        # Keep the WAL's reference in lockstep so arming after
        # construction still reaches every failpoint.
        self._faults = injector
        self.wal.faults = injector

    # -- connections -------------------------------------------------------

    def connect(self) -> Connection:
        return Connection(self)

    def _default(self) -> Connection:
        if self._default_connection is None:
            self._default_connection = self.connect()
        return self._default_connection

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        *,
        _normalized: str | None = None,
    ) -> Result:
        """Execute SQL on the database's default connection."""
        return self._default().execute(sql, params, _normalized=_normalized)

    def query(
        self, sql: str, params: Sequence[Any] | None = None
    ) -> list[dict[str, Any]]:
        return self._default().query(sql, params)

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare a (possibly ``?``-parameterized) statement for
        repeated execution; parse errors surface here, not at execute."""
        return PreparedStatement(self, sql)

    def _bump_schema_version(self) -> None:
        """Invalidate cached plans after any DDL.

        Extra bumps are always safe — they cause cache misses, never
        stale hits — so every DDL path calls this unconditionally, even
        when the change could not affect existing plans.
        """
        self.schema_version += 1
        self.statement_cache.drop_stale(self.schema_version)

    # -- commit/abort hooks ---------------------------------------------------

    def _on_commit(self, transaction: Transaction) -> None:
        if transaction.attributes.get("wrote"):
            self.wal.append(transaction.txid, OP_COMMIT)
            if self.wal.sync_policy == "commit":
                self.wal.commit_point()
        self.statistics["commits"] += 1

    def _after_commit(self, transaction: Transaction) -> None:
        # Locks are released here, so listeners may freely run new
        # transactions (queries, enqueues) without self-deadlocking.
        for listener in self._commit_listeners:
            listener(transaction)

    def _on_abort(self, transaction: Transaction) -> None:
        if transaction.attributes.get("wrote"):
            self.wal.append(transaction.txid, OP_ABORT)
        self.statistics["rollbacks"] += 1

    def _after_abort(self, transaction: Transaction) -> None:
        for listener in self._abort_listeners:
            listener(transaction)

    def add_commit_listener(self, listener: Callable[[Transaction], None]) -> None:
        """Register a callback invoked after every successful commit.

        Used by transactional event capture: events buffered during a
        transaction are published only once the transaction commits.
        """
        self._commit_listeners.append(listener)

    def add_abort_listener(self, listener: Callable[[Transaction], None]) -> None:
        """Register a callback invoked after every rollback."""
        self._abort_listeners.append(listener)

    def _mark_write(self, transaction: Transaction) -> None:
        if not transaction.attributes.get("wrote"):
            transaction.attributes["wrote"] = True
            self.wal.append(transaction.txid, OP_BEGIN)

    # -- locking helpers ---------------------------------------------------------

    def lock_table_shared(self, conn: Connection, table: str) -> None:
        transaction = conn.require_transaction()
        self.locks.acquire(
            transaction.txid, ("table", table.lower()), LockMode.SHARED
        )

    def lock_table_exclusive(self, conn: Connection, table: str) -> None:
        transaction = conn.require_transaction()
        self.locks.acquire(
            transaction.txid, ("table", table.lower()), LockMode.EXCLUSIVE
        )

    # -- transaction plumbing for the programmatic API ----------------------------

    def _with_transaction(
        self, conn: Connection | None, work: Callable[[Connection], Any]
    ) -> Any:
        """Run ``work`` in the caller's transaction or an implicit one."""
        if conn is not None:
            conn.require_transaction()
            return work(conn)
        scratch = self.connect()
        scratch.begin()
        try:
            result = work(scratch)
        except BaseException:
            scratch.rollback()
            raise
        scratch.commit()
        return result

    def run_in_transaction(
        self, conn: Connection | None, work: Callable[[Connection], Any]
    ) -> Any:
        """Public name for :meth:`_with_transaction` (the
        :class:`~repro.db.engine.StorageEngine` contract)."""
        return self._with_transaction(conn, work)

    # -- DDL ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[Column] | None = None,
        *,
        checks: list[Expression] | None = None,
        schema: TableSchema | None = None,
        conn: Connection | None = None,
    ) -> HeapTable:
        """Create a table from a schema or a column list."""
        if schema is None:
            if columns is None:
                raise SchemaError("create_table needs columns or a schema")
            schema = TableSchema(name, columns, checks)

        def work(connection: Connection) -> HeapTable:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, schema.name)
            table = self.catalog.create_table(schema)
            self._bump_schema_version()
            self._mark_write(transaction)
            self.wal.append(
                transaction.txid,
                OP_CREATE_TABLE,
                table=schema.name,
                meta={"schema": schema_to_dict(schema)},
            )
            transaction.record_undo(
                lambda: self.catalog.drop_table(schema.name)
            )
            return table

        return self._with_transaction(conn, work)

    def create_table_from_def(
        self, conn: Connection, statement: CreateTableStmt
    ) -> None:
        """Execute a parsed CREATE TABLE (called by the SQL executor)."""
        if statement.if_not_exists and self.catalog.has_table(statement.table):
            return
        columns = [
            Column(
                name=definition.name,
                col_type=type_by_name(definition.type_name),
                nullable=definition.nullable,
                primary_key=definition.primary_key,
                unique=definition.unique,
                default=definition.default,
            )
            for definition in statement.columns
        ]
        self.create_table(
            statement.table, columns, checks=statement.checks, conn=conn
        )

    def drop_table(
        self,
        name: str,
        *,
        if_exists: bool = False,
        conn: Connection | None = None,
    ) -> None:
        if if_exists and not self.catalog.has_table(name):
            return

        def work(connection: Connection) -> None:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, name)
            table = self.catalog.drop_table(name)
            self._bump_schema_version()
            self._mark_write(transaction)
            self.wal.append(transaction.txid, OP_DROP_TABLE, table=name.lower())

            def undo() -> None:
                restored = self.catalog.create_table(table.schema)
                restored.restore(table.snapshot())

            transaction.record_undo(undo)

        self._with_transaction(conn, work)

    def create_index(
        self,
        name: str,
        table_name: str,
        column: str,
        *,
        unique: bool = False,
        kind: str = "ordered",
        conn: Connection | None = None,
    ) -> None:
        def work(connection: Connection) -> None:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, table_name)
            table = self.catalog.table(table_name)
            table.create_index(name, column, kind=kind, unique=unique)
            self._bump_schema_version()
            self._mark_write(transaction)
            self.wal.append(
                transaction.txid,
                OP_CREATE_INDEX,
                table=table.name,
                meta={
                    "name": name,
                    "column": column.lower(),
                    "unique": unique,
                    "kind": kind,
                },
            )
            transaction.record_undo(lambda: table.drop_index(name))

        self._with_transaction(conn, work)

    def drop_index(self, name: str, table_name: str) -> None:
        self.catalog.table(table_name).drop_index(name)
        self._bump_schema_version()

    # -- triggers ------------------------------------------------------------

    def register_trigger_function(
        self, name: str, fn: Callable[[TriggerContext], Any]
    ) -> None:
        """Register a Python callback usable from ``CREATE TRIGGER ...
        EXECUTE name`` (and re-bound automatically during recovery)."""
        self._trigger_functions[name.lower()] = fn

    def create_trigger(
        self,
        name: str,
        table: str,
        *,
        timing: TriggerTiming,
        event: TriggerEvent,
        action: Callable[[TriggerContext], Any],
        when: Expression | None = None,
        for_each_row: bool = True,
    ) -> Trigger:
        """Programmatic trigger with an arbitrary Python action.

        Not journaled (a Python callable cannot be persisted); use the
        SQL form with a registered function name when the trigger must
        survive recovery.
        """
        if not self.catalog.has_table(table):
            raise SchemaError(f"table {table!r} does not exist")
        trigger = Trigger(
            name=name.lower(),
            table=table.lower(),
            timing=timing,
            event=event,
            action=action,
            when=when,
            for_each_row=for_each_row,
        )
        return self.catalog.triggers.create(trigger)

    def create_trigger_from_def(self, statement: CreateTriggerStmt) -> None:
        callback = self._trigger_functions.get(statement.callback)
        if callback is None:
            raise TriggerError(
                f"trigger function {statement.callback!r} is not registered"
            )
        self.create_trigger(
            statement.name,
            statement.table,
            timing=TriggerTiming(statement.timing),
            event=TriggerEvent(statement.event),
            action=callback,
            when=statement.when,
            for_each_row=statement.for_each_row,
        )
        # Journal the definition so recovery can re-create it.
        scratch = self.transactions.begin()
        self.wal.append(
            scratch.txid,
            OP_BEGIN,
        )
        self.wal.append(
            scratch.txid,
            OP_CREATE_TRIGGER,
            table=statement.table.lower(),
            meta={
                "name": statement.name.lower(),
                "timing": statement.timing,
                "event": statement.event,
                "callback": statement.callback,
                "when": (
                    expression_to_dict(statement.when)
                    if statement.when is not None
                    else None
                ),
                "for_each_row": statement.for_each_row,
            },
        )
        scratch.attributes["wrote"] = True
        self.transactions.commit(scratch)

    def drop_trigger(self, name: str) -> None:
        self.catalog.triggers.drop(name.lower())

    def _fire_row_triggers(
        self,
        table: str,
        event: TriggerEvent,
        timing: TriggerTiming,
        txid: int,
        old_row: dict[str, Any] | None,
        new_row: dict[str, Any] | None,
        connection: "Connection | None" = None,
    ) -> dict[str, Any] | None:
        # Fast path: trigger-free tables skip context construction —
        # on batched ingest this allocation dominated per-row trigger
        # dispatch cost despite no trigger ever firing.
        if not self.catalog.triggers.has(table, event):
            return None
        context = TriggerContext(
            table=table,
            event=event,
            timing=timing,
            txid=txid,
            old_row=old_row,
            new_row=new_row,
            connection=connection,
        )
        return self.catalog.triggers.fire(table, event, timing, context)

    def fire_statement_triggers(
        self,
        table: str,
        event: TriggerEvent,
        timing: TriggerTiming,
        txid: int,
        affected_rows: int,
        connection: Connection | None = None,
    ) -> None:
        if not self.catalog.triggers.has(table, event):
            return
        context = TriggerContext(
            table=table,
            event=event,
            timing=timing,
            txid=txid,
            affected_rows=affected_rows,
            statement_level=True,
            connection=connection,
        )
        self.catalog.triggers.fire(table, event, timing, context)

    # -- DML core -----------------------------------------------------------------

    def _insert_locked(
        self,
        connection: Connection,
        transaction: Transaction,
        table: HeapTable,
        values: Mapping[str, Any],
    ) -> int:
        """Insert one row into an already-locked table (shared by the
        single-row and batched paths)."""
        incoming = dict(values)
        rewritten = self._fire_row_triggers(
            table.name,
            TriggerEvent.INSERT,
            TriggerTiming.BEFORE,
            transaction.txid,
            None,
            incoming,
            connection=connection,
        )
        if rewritten is not None:
            incoming = rewritten
        row = table.schema.coerce_row(
            incoming,
            check_evaluator=lambda check, r: compile_expression(check)(r),
        )
        rowid = table.insert(row)
        # Undo is registered before the journal append so that a failed
        # append (e.g. an unserializable value) rolls back cleanly.
        transaction.record_undo(lambda: table.delete(rowid))
        self._mark_write(transaction)
        self.wal.append(
            transaction.txid,
            OP_INSERT,
            table=table.name,
            rowid=rowid,
            after=dict(row),
        )
        self.statistics["inserts"] += 1
        self._fire_row_triggers(
            table.name,
            TriggerEvent.INSERT,
            TriggerTiming.AFTER,
            transaction.txid,
            None,
            dict(row),
            connection=connection,
        )
        return rowid

    def insert_row(
        self,
        table_name: str,
        values: Mapping[str, Any],
        *,
        conn: Connection | None = None,
    ) -> int:
        """Insert one row; returns its rowid."""

        def work(connection: Connection) -> int:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, table_name)
            table = self.catalog.table(table_name)
            return self._insert_locked(connection, transaction, table, values)

        return self._with_transaction(conn, work)

    def insert_many(
        self,
        table_name: str,
        rows: Iterable[Mapping[str, Any]],
        *,
        conn: Connection | None = None,
    ) -> list[int]:
        """Insert a batch of rows in ONE transaction; returns rowids.

        The lock is acquired once and — under ``sync_policy="commit"``
        — the whole batch shares a single journal flush, so per-message
        commit cost is amortized over the batch (§2.2.b.i.3).  Triggers
        and constraint checks still run per row, identically to
        :meth:`insert_row`.
        """
        batch = [dict(values) for values in rows]
        if not batch:
            return []

        def work(connection: Connection) -> list[int]:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, table_name)
            table = self.catalog.table(table_name)
            return [
                self._insert_locked(connection, transaction, table, values)
                for values in batch
            ]

        return self._with_transaction(conn, work)

    def _update_locked(
        self,
        connection: Connection,
        transaction: Transaction,
        table: HeapTable,
        rowid: int,
        updates: Mapping[str, Any],
    ) -> None:
        """Update one row of an already-locked table (shared by the
        single-row and batched paths)."""
        current = table.get(rowid)
        if current is None:
            raise SchemaError(
                f"table {table.name!r} has no row with rowid {rowid}"
            )
        proposed = dict(current)
        proposed.update(updates)
        rewritten = self._fire_row_triggers(
            table.name,
            TriggerEvent.UPDATE,
            TriggerTiming.BEFORE,
            transaction.txid,
            current,
            proposed,
            connection=connection,
        )
        if rewritten is not None:
            proposed = rewritten
        effective_updates = {
            key: value
            for key, value in proposed.items()
            if key not in current or current[key] != value
            or type(current[key]) is not type(value)
        }
        coerced = table.schema.coerce_update(effective_updates)
        merged = dict(current)
        merged.update(coerced)
        for check, check_fn in table.schema.compiled_checks:
            if check_fn(merged) is False:
                raise ConstraintViolation(
                    f"CHECK on {table.name}", detail=str(check)
                )
        old_row = table.update(rowid, coerced)
        transaction.record_undo(
            lambda: table.update(rowid, old_row)
        )
        self._mark_write(transaction)
        self.wal.append(
            transaction.txid,
            OP_UPDATE,
            table=table.name,
            rowid=rowid,
            before=dict(old_row),
            after=merged,
        )
        self.statistics["updates"] += 1
        self._fire_row_triggers(
            table.name,
            TriggerEvent.UPDATE,
            TriggerTiming.AFTER,
            transaction.txid,
            old_row,
            merged,
            connection=connection,
        )

    def update_row(
        self,
        table_name: str,
        rowid: int,
        updates: Mapping[str, Any],
        *,
        conn: Connection | None = None,
    ) -> None:
        """Apply column updates to a single row identified by rowid."""

        def work(connection: Connection) -> None:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, table_name)
            table = self.catalog.table(table_name)
            self._update_locked(connection, transaction, table, rowid, updates)

        self._with_transaction(conn, work)

    def update_rows(
        self,
        table_name: str,
        updates: Iterable[tuple[int, Mapping[str, Any]]],
        *,
        conn: Connection | None = None,
    ) -> int:
        """Apply ``(rowid, column updates)`` pairs in ONE transaction.

        Like :meth:`insert_many`, this acquires the table lock once and
        shares a single commit (and journal flush) across the whole
        batch; triggers and checks run per row.  Returns the number of
        rows updated.
        """
        batch = [(rowid, dict(columns)) for rowid, columns in updates]
        if not batch:
            return 0

        def work(connection: Connection) -> int:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, table_name)
            table = self.catalog.table(table_name)
            for rowid, columns in batch:
                self._update_locked(
                    connection, transaction, table, rowid, columns
                )
            return len(batch)

        return self._with_transaction(conn, work)

    def delete_row(
        self,
        table_name: str,
        rowid: int,
        *,
        conn: Connection | None = None,
    ) -> None:
        def work(connection: Connection) -> None:
            transaction = connection.require_transaction()
            self.lock_table_exclusive(connection, table_name)
            table = self.catalog.table(table_name)
            current = table.get(rowid)
            if current is None:
                raise SchemaError(
                    f"table {table.name!r} has no row with rowid {rowid}"
                )
            self._fire_row_triggers(
                table.name,
                TriggerEvent.DELETE,
                TriggerTiming.BEFORE,
                transaction.txid,
                current,
                None,
                connection=connection,
            )
            old_row = table.delete(rowid)
            transaction.record_undo(
                lambda: table.insert(old_row, rowid=rowid)
            )
            self._mark_write(transaction)
            self.wal.append(
                transaction.txid,
                OP_DELETE,
                table=table.name,
                rowid=rowid,
                before=dict(old_row),
            )
            self.statistics["deletes"] += 1
            self._fire_row_triggers(
                table.name,
                TriggerEvent.DELETE,
                TriggerTiming.AFTER,
                transaction.txid,
                old_row,
                None,
                connection=connection,
            )

        self._with_transaction(conn, work)

    # -- journal access (log mining) ----------------------------------------------

    def journal_reader(self, start_lsn: int | None = None) -> JournalReader:
        """A committed-changes cursor for journal-based event capture.

        By default the reader starts at the current journal tail, seeing
        only changes made after its creation.
        """
        if start_lsn is None:
            start_lsn = self.wal.last_lsn
        return JournalReader(self.wal, start_lsn)

    # -- checkpoint & recovery -------------------------------------------------------

    def checkpoint(self, *, truncate: bool = False) -> int:
        """Write a consistent checkpoint; returns its LSN.

        Requires quiescence (no active transactions).  With
        ``truncate=True`` the journal prefix before the checkpoint is
        reclaimed — journal readers positioned before it will miss
        events, so only truncate once all miners have caught up.
        """
        if self.transactions.active_count:
            raise TransactionError(
                "checkpoint requires no active transactions"
            )
        self.wal.flush()
        tables_meta: dict[str, Any] = {}
        for table in self.catalog.tables():
            indexes = []
            for index_name, index in table.indexes.items():
                if index_name.startswith("uq_"):
                    continue  # Recreated automatically from the schema.
                indexes.append(
                    {
                        "name": index_name,
                        "column": index.column,
                        "unique": index.unique,
                        "kind": "hash" if isinstance(index, HashIndex) else "ordered",
                    }
                )
            tables_meta[table.name] = {
                "schema": schema_to_dict(table.schema),
                # scan_internal: checkpoint meta is JSON-encoded at append
                # time (or held only by readers that never write), and
                # stored rows are never mutated in place, so no copies.
                "rows": {str(rowid): row for rowid, row in table.scan_internal()},
                "indexes": indexes,
            }
        scratch = self.transactions.begin()
        record = self.wal.append(
            scratch.txid,
            OP_CHECKPOINT,
            meta={"tables": tables_meta, "next_txid": scratch.txid + 1},
        )
        self.transactions.commit(scratch)
        self.wal.flush()
        if truncate:
            self.wal.truncate_before(record.lsn)
        return record.lsn

    def simulate_crash(self) -> None:
        """Drop all volatile state and recover from the durable journal.

        Models a process crash: unflushed journal records, in-memory
        table state, and un-journaled (programmatic) triggers are lost;
        everything else is rebuilt by redo.
        """
        records = self.wal.crash()
        self._rebuild_from_records(records)

    def _rebuild_from_records(self, records: list[Any]) -> None:
        plan = analyze(records)
        self.catalog = Catalog()
        self.locks = LockManager(timeout=self.locks._timeout)
        self.transactions = TransactionManager(self.locks)
        self.transactions.on_commit = self._on_commit
        self.transactions.on_abort = self._on_abort
        self.transactions.after_commit = self._after_commit
        self.transactions.after_abort = self._after_abort
        self._default_connection = None

        if plan.checkpoint is not None:
            for table_name, table_meta in plan.checkpoint.meta["tables"].items():
                schema = schema_from_dict(table_meta["schema"])
                table = self.catalog.create_table(schema)
                table.restore(
                    {int(rowid): row for rowid, row in table_meta["rows"].items()}
                )
                for index_meta in table_meta.get("indexes", []):
                    if index_meta["name"] not in table.indexes:
                        table.create_index(
                            index_meta["name"],
                            index_meta["column"],
                            kind=index_meta["kind"],
                            unique=index_meta["unique"],
                        )
            next_txid = plan.checkpoint.meta.get("next_txid", 1)
            self.transactions.set_next_txid(max(next_txid, plan.max_txid + 1))
        else:
            self.transactions.set_next_txid(plan.max_txid + 1)

        skipped_triggers: list[str] = []
        for record in plan.redo_records:
            verify_redo_record(record)
            try:
                skipped = self._redo_one(record)
            except RecoveryError:
                raise
            except DatabaseError as exc:
                # Surface redo failures with the offending record's
                # coordinates instead of a bare storage-layer message.
                raise RecoveryError(
                    f"redo failed: {exc}",
                    lsn=record.lsn,
                    op=record.op,
                    table=record.table,
                    rowid=record.rowid,
                ) from exc
            if skipped is not None:
                skipped_triggers.append(skipped)
        self.recovery_skipped_triggers = skipped_triggers
        # The whole catalog was just rebuilt; plans cached before the
        # crash/attach must not survive it.
        self._bump_schema_version()

    def _redo_one(self, record: Any) -> str | None:
        """Apply one redo record; returns a skipped-trigger name when a
        journaled trigger's function is not registered."""
        if record.op == OP_CREATE_TABLE:
            self.catalog.create_table(schema_from_dict(record.meta["schema"]))
        elif record.op == OP_DROP_TABLE:
            if self.catalog.has_table(record.table):
                self.catalog.drop_table(record.table)
        elif record.op == OP_CREATE_INDEX:
            table = self.catalog.table(record.table)
            meta = record.meta
            if meta["name"] not in table.indexes:
                table.create_index(
                    meta["name"],
                    meta["column"],
                    kind=meta["kind"],
                    unique=meta["unique"],
                )
        elif record.op == OP_CREATE_TRIGGER:
            meta = record.meta
            callback = self._trigger_functions.get(meta["callback"])
            if callback is None:
                return meta["name"]
            self.create_trigger(
                meta["name"],
                record.table,
                timing=TriggerTiming(meta["timing"]),
                event=TriggerEvent(meta["event"]),
                action=callback,
                when=(
                    expression_from_dict(meta["when"])
                    if meta.get("when") is not None
                    else None
                ),
                for_each_row=meta["for_each_row"],
            )
        elif record.op == OP_INSERT:
            self.catalog.table(record.table).insert(
                record.after, rowid=record.rowid
            )
        elif record.op == OP_UPDATE:
            self.catalog.table(record.table).update(
                record.rowid, record.after
            )
        elif record.op == OP_DELETE:
            self.catalog.table(record.table).delete(record.rowid)
        return None


def make_timestamp_default(clock: Clock) -> Callable[[], float]:
    """Column default producing the current time from ``clock``."""

    def default() -> float:
        return clock.now()

    return default
