"""The storage-engine interface a shard-local engine must provide.

The sharded execution layer (:mod:`repro.shard`) runs N worker
processes, each owning one *storage engine* — a process-local journal,
catalog, transaction manager, and DML core.  Everything built on top of
the engine (queue tables, brokers, capture sources, materialized views)
programs against this interface, never against a concrete class, so a
shard is simply "a :class:`~repro.db.database.Database` behind the same
API" and the single-process and sharded deployments share every line of
queue/pub-sub code.

The interface is deliberately the *used* surface, not an aspirational
one: every method here is called today by the queue layer, capture
sources, or the IVM layer.  Attribute contracts (``clock``, ``catalog``,
``wal``, ``obs``, ``faults``) are documented rather than declared
abstract — they are instance attributes on engines, and the queue layer
reads them directly on hot paths.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.catalog import Catalog
    from repro.db.database import Connection
    from repro.db.schema import Column, TableSchema
    from repro.db.sql.executor import Result
    from repro.db.storage import HeapTable
    from repro.db.wal import JournalReader


class StorageEngine(abc.ABC):
    """Process-local storage: tables, transactions, journal, metrics.

    Required instance attributes (read directly by the layers above):

    ``clock``
        The engine's :class:`repro.clock.Clock`; every timestamp the
        queue layer produces comes from here.
    ``catalog``
        The :class:`repro.db.catalog.Catalog` of live tables.
    ``wal``
        The engine's :class:`repro.db.wal.WriteAheadLog`.
    ``obs``
        The engine's :class:`repro.obs.metrics.MetricsRegistry`;
        components bind their instruments from it once, at construction.
    ``faults``
        Optional :class:`repro.faults.FaultInjector` shared by every
        failpoint site reachable through this engine (may be ``None``).
    """

    # -- sessions & SQL -----------------------------------------------------

    @abc.abstractmethod
    def connect(self) -> "Connection":
        """Open a session against this engine."""

    @abc.abstractmethod
    def execute(
        self, sql: str, params: Sequence[Any] | None = None
    ) -> "Result":
        """Execute one SQL statement on the engine's default session."""

    @abc.abstractmethod
    def query(
        self, sql: str, params: Sequence[Any] | None = None
    ) -> list[dict[str, Any]]:
        """Execute and return rows (convenience for SELECT)."""

    @abc.abstractmethod
    def prepare(self, sql: str) -> Any:
        """Prepare a (possibly parameterized) statement for reuse."""

    # -- DDL ----------------------------------------------------------------

    @abc.abstractmethod
    def create_table(
        self,
        name: str,
        columns: "list[Column] | None" = None,
        *,
        checks: list[Any] | None = None,
        schema: "TableSchema | None" = None,
        conn: "Connection | None" = None,
    ) -> "HeapTable":
        """Create a table from a schema or column list."""

    @abc.abstractmethod
    def drop_table(
        self,
        name: str,
        *,
        if_exists: bool = False,
        conn: "Connection | None" = None,
    ) -> None:
        """Drop a table."""

    @abc.abstractmethod
    def create_index(
        self,
        name: str,
        table_name: str,
        column: str,
        *,
        unique: bool = False,
        kind: str = "ordered",
        conn: "Connection | None" = None,
    ) -> None:
        """Create an index on one column."""

    # -- DML core -----------------------------------------------------------

    @abc.abstractmethod
    def insert_row(
        self,
        table_name: str,
        values: Mapping[str, Any],
        *,
        conn: "Connection | None" = None,
    ) -> int:
        """Insert one row; returns its rowid."""

    @abc.abstractmethod
    def insert_many(
        self,
        table_name: str,
        rows: Iterable[Mapping[str, Any]],
        *,
        conn: "Connection | None" = None,
    ) -> list[int]:
        """Insert a batch of rows in ONE transaction; returns rowids."""

    @abc.abstractmethod
    def update_row(
        self,
        table_name: str,
        rowid: int,
        updates: Mapping[str, Any],
        *,
        conn: "Connection | None" = None,
    ) -> None:
        """Apply column updates to one row."""

    @abc.abstractmethod
    def update_rows(
        self,
        table_name: str,
        updates: Iterable[tuple[int, Mapping[str, Any]]],
        *,
        conn: "Connection | None" = None,
    ) -> int:
        """Apply ``(rowid, updates)`` pairs in ONE transaction."""

    @abc.abstractmethod
    def delete_row(
        self,
        table_name: str,
        rowid: int,
        *,
        conn: "Connection | None" = None,
    ) -> None:
        """Delete one row."""

    # -- transactions & locking --------------------------------------------

    @abc.abstractmethod
    def run_in_transaction(
        self, conn: "Connection | None", work: Callable[["Connection"], Any]
    ) -> Any:
        """Run ``work`` in the caller's transaction or an implicit one.

        With ``conn`` given, ``work`` joins its open transaction; with
        ``conn=None`` the engine opens a scratch transaction around it
        (commit on return, rollback on raise).
        """

    @abc.abstractmethod
    def lock_table_shared(self, conn: "Connection", table: str) -> None:
        """Take a shared table lock in ``conn``'s transaction."""

    @abc.abstractmethod
    def lock_table_exclusive(self, conn: "Connection", table: str) -> None:
        """Take an exclusive table lock in ``conn``'s transaction."""

    @abc.abstractmethod
    def add_commit_listener(self, listener: Callable[[Any], None]) -> None:
        """Register a callback invoked after every successful commit."""

    @abc.abstractmethod
    def add_abort_listener(self, listener: Callable[[Any], None]) -> None:
        """Register a callback invoked after every rollback."""

    # -- journal, checkpoint, observability ---------------------------------

    @abc.abstractmethod
    def journal_reader(self, start_lsn: int | None = None) -> "JournalReader":
        """A committed-changes cursor over the engine's journal."""

    @abc.abstractmethod
    def checkpoint(self, *, truncate: bool = False) -> int:
        """Write a consistent checkpoint; returns its LSN."""

    @abc.abstractmethod
    def metrics(self) -> dict[str, Any]:
        """One coherent observability snapshot for this engine."""
