"""Columnar secondary projection of a heap table.

A :class:`ColumnStore` shadows one :class:`repro.db.storage.HeapTable`
with per-column typed numpy arrays plus null masks — the batch-at-a-time
representation the vectorized executor fast path (and the IVM batch
folds) reduce over.  The heap stays the single source of truth; the
store is a cache with a narrow consistency protocol driven by the
table's mutation hooks:

* **insert** appends the new row to a pending tail that is encoded into
  the arrays lazily, in one batch, on the next read;
* **update / delete / restore** invalidate the whole projection (column
  segments cannot cheaply splice), and the next read rebuilds it from
  the heap with :meth:`HeapTable.scan_internal`;
* reads happen under the database's shared table lock, so a batch
  handed out by :meth:`batch` is consistent with the heap for the
  duration of the statement.

Column encodings:

* INT and BOOL columns are ``int64`` arrays (``compare_values`` folds
  bools to ints, so this loses nothing); REAL and TIMESTAMP are
  ``float64``; NULLs store a zero fill plus a ``True`` bit in the
  column's null mask.
* TEXT columns are dictionary-encoded: a *sorted* array of distinct
  strings plus an ``int64`` code per row.  Sorting the dictionary makes
  ordered comparisons against constants a ``searchsorted`` on codes.
* JSON columns (and INT columns whose values overflow int64) are not
  vectorizable; expressions touching them fall back to the row path.

GC note: the store retains O(columns) numpy arrays, one encode dict per
TEXT column, and nothing per row — BENCH_PR4's perf cliffs were gen-2
GC walks over per-row Python objects, and this layer must not
reintroduce one (regression-gated by the columnar GC test).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Mapping

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as np
except ImportError:  # pragma: no cover - the environment bakes numpy in
    np = None  # type: ignore[assignment]

from repro.db import types as _types

if TYPE_CHECKING:
    from repro.db.schema import TableSchema
    from repro.db.storage import HeapTable

#: INT constants beyond this magnitude are not representable exactly in
#: the vector kernels (int64/f64 conversion hazards); queries comparing
#: against them fall back to the row path.
INT64_SAFE_BOUND = 2**62


def vector_kinds(schema: "TableSchema") -> dict[str, str]:
    """Map each vectorizable column to its kernel kind.

    Kinds: ``int`` / ``real`` / ``bool`` (numeric arrays) and ``text``
    (dictionary codes).  JSON columns are omitted — an expression that
    references an omitted column does not vector-compile, which is the
    fallback contract.  Memoized on the schema object.
    """
    cached = schema.__dict__.get("_vector_kinds_memo")
    if cached is not None:
        return cached
    kinds: dict[str, str] = {}
    for column in schema.columns:
        col_type = column.col_type
        if col_type is _types.INT:
            kinds[column.name] = "int"
        elif col_type is _types.REAL or col_type is _types.TIMESTAMP:
            kinds[column.name] = "real"
        elif col_type is _types.BOOL:
            kinds[column.name] = "bool"
        elif col_type is _types.TEXT:
            kinds[column.name] = "text"
    schema._vector_kinds_memo = kinds
    return kinds


class ColumnSeries:
    """One column's arrays: values (or text codes), null mask, and —
    for text — the sorted dictionary the codes index into."""

    __slots__ = ("kind", "values", "nulls", "dictionary")

    def __init__(self, kind: str, values: Any, nulls: Any, dictionary: Any = None):
        self.kind = kind  # "num" | "text"
        self.values = values
        self.nulls = nulls
        self.dictionary = dictionary


class ColumnBatch:
    """A consistent, read-only view over a ColumnStore's arrays.

    This is the object vector kernels evaluate against: ``n`` rows,
    ``series(name)`` per column (``None`` when the column could not be
    encoded — the runtime fallback signal), and the aligned ``rowids``
    array the executor uses to fetch representative rows."""

    __slots__ = ("n", "rowids", "_series")

    def __init__(self, n: int, rowids: Any, series: dict[str, ColumnSeries]):
        self.n = n
        self.rowids = rowids
        self._series = series

    def series(self, name: str) -> ColumnSeries | None:
        return self._series.get(name)


class ColumnStore:
    """Lazily built columnar projection of one heap table."""

    def __init__(self, table: "HeapTable") -> None:
        if np is None:  # pragma: no cover
            raise RuntimeError("ColumnStore requires numpy")
        self._table = table
        self._lock = threading.Lock()
        self._kinds = vector_kinds(table.schema)
        self._dirty = True
        # Rows inserted since the last build, as (rowid, stored-row)
        # references (stored rows are never mutated in place, so holding
        # references is safe).  Encoded in one batch on the next read.
        self._pending: list[tuple[int, Mapping[str, Any]]] = []
        self._rowids: Any = None
        self._columns: dict[str, ColumnSeries] = {}
        # Diagnostics (asserted on by the consistency tests).
        self.rebuilds = 0
        self.append_batches = 0

    # -- mutation hooks (called by HeapTable with storage already updated)

    def note_insert(self, rowid: int, row: Mapping[str, Any]) -> None:
        if not self._dirty:
            self._pending.append((rowid, row))

    def note_mutation(self) -> None:
        """Update/delete/restore: invalidate; next read rebuilds."""
        if not self._dirty:
            self._dirty = True
            self._pending.clear()

    # -- reads -------------------------------------------------------------

    def batch(self) -> ColumnBatch:
        """The current consistent view, (re)building or flushing the
        pending insert tail as needed."""
        with self._lock:
            if self._dirty:
                self._rebuild()
            elif self._pending:
                self._flush_pending()
            return ColumnBatch(
                int(self._rowids.shape[0]), self._rowids, dict(self._columns)
            )

    # -- encoding ----------------------------------------------------------

    def _rebuild(self) -> None:
        rows = list(self._table.scan_internal())
        self._rowids = np.fromiter(
            (rowid for rowid, _row in rows), dtype=np.int64, count=len(rows)
        )
        self._columns = {}
        for name, kind in self._kinds.items():
            series = self._encode_column(name, kind, [row for _rowid, row in rows])
            if series is not None:
                self._columns[name] = series
        self._pending.clear()
        self._dirty = False
        self.rebuilds += 1

    def _flush_pending(self) -> None:
        pending, self._pending = self._pending, []
        tail_rowids = np.fromiter(
            (rowid for rowid, _row in pending), dtype=np.int64, count=len(pending)
        )
        self._rowids = np.concatenate([self._rowids, tail_rowids])
        tail_rows = [row for _rowid, row in pending]
        for name in list(self._columns):
            base = self._columns[name]
            tail = self._encode_column(name, self._kinds[name], tail_rows)
            if tail is None:
                del self._columns[name]  # overflow mid-append: drop column
                continue
            if base.kind == "text":
                self._columns[name] = _append_text(base, tail)
            else:
                self._columns[name] = ColumnSeries(
                    "num",
                    np.concatenate([base.values, tail.values]),
                    np.concatenate([base.nulls, tail.nulls]),
                )
        self.append_batches += 1

    def _encode_column(
        self, name: str, kind: str, rows: list[Mapping[str, Any]]
    ) -> ColumnSeries | None:
        raw = [row[name] for row in rows]
        nulls = np.fromiter(
            (value is None for value in raw), dtype=np.bool_, count=len(raw)
        )
        if kind == "text":
            distinct = sorted({value for value in raw if value is not None})
            dictionary = np.array(distinct, dtype=object)
            encode = {value: code for code, value in enumerate(distinct)}
            codes = np.fromiter(
                (0 if value is None else encode[value] for value in raw),
                dtype=np.int64,
                count=len(raw),
            )
            return ColumnSeries("text", codes, nulls, dictionary)
        if kind == "real":
            values = np.fromiter(
                (0.0 if value is None else value for value in raw),
                dtype=np.float64,
                count=len(raw),
            )
            return ColumnSeries("num", values, nulls)
        # int / bool -> int64 (compare_values folds bool to int anyway)
        try:
            values = np.fromiter(
                (0 if value is None else int(value) for value in raw),
                dtype=np.int64,
                count=len(raw),
            )
        except OverflowError:
            return None  # unbounded Python ints: this column is row-path only
        return ColumnSeries("num", values, nulls)


def _append_text(base: ColumnSeries, tail: ColumnSeries) -> ColumnSeries:
    """Concatenate two text series, merging dictionaries and remapping
    codes so the combined dictionary stays sorted."""
    if tail.dictionary.shape[0] == 0:
        merged = base.dictionary
        base_codes = base.values
        tail_codes = tail.values
    elif base.dictionary.shape[0] == 0:
        merged = tail.dictionary
        base_codes = base.values
        tail_codes = tail.values
    else:
        merged_list = sorted(set(base.dictionary.tolist()) | set(tail.dictionary.tolist()))
        merged = np.array(merged_list, dtype=object)
        base_remap = np.searchsorted(merged, base.dictionary)
        tail_remap = np.searchsorted(merged, tail.dictionary)
        base_codes = base_remap[base.values]
        tail_codes = tail_remap[tail.values]
    return ColumnSeries(
        "text",
        np.concatenate([base_codes, tail_codes]).astype(np.int64, copy=False),
        np.concatenate([base.nulls, tail.nulls]),
        merged,
    )
