"""Embedded relational database substrate.

The tutorial's thesis is that the database is the natural platform for
event processing; this subpackage provides that platform: typed tables,
a write-ahead log (the *journal*), ACID transactions with two-phase
locking, hash and ordered indexes, a SQL subset, and triggers.

Public entry point: :class:`repro.db.Database`.
"""

from repro.db.database import Connection, Database
from repro.db.engine import StorageEngine
from repro.db.schema import Column, TableSchema
from repro.db.types import (
    BOOL,
    INT,
    JSON,
    REAL,
    TEXT,
    TIMESTAMP,
    ColumnType,
)
from repro.db.triggers import Trigger, TriggerEvent, TriggerTiming

__all__ = [
    "Database",
    "StorageEngine",
    "Connection",
    "Column",
    "TableSchema",
    "ColumnType",
    "INT",
    "REAL",
    "TEXT",
    "BOOL",
    "TIMESTAMP",
    "JSON",
    "Trigger",
    "TriggerEvent",
    "TriggerTiming",
]
