"""Recursive-descent parser for the SQL subset.

Grammar sketch (expressions use standard precedence):

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive (comparison | IS [NOT] NULL | [NOT] IN (...)
                   | [NOT] BETWEEN additive AND additive
                   | [NOT] LIKE additive)?
    additive    := multiplicative (('+'|'-'|'||') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := literal | column | function '(' args ')' | CASE ... END
                   | '(' expr ')'
"""

from __future__ import annotations

from typing import Any

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    UnaryOp,
)
from repro.db.sql.ast import (
    AGGREGATE_NAMES,
    AggregateCall,
    BeginStatement,
    ColumnDef,
    CommitStatement,
    CreateIndex,
    CreateTable,
    CreateTrigger,
    Delete,
    DropIndex,
    DropTable,
    DropTrigger,
    ExistsSelect,
    Explain,
    InSelect,
    Insert,
    JoinClause,
    OrderItem,
    RollbackStatement,
    SavepointStatement,
    Select,
    SelectItem,
    Statement,
    Update,
)
from repro.db.sql.lexer import Token, tokenize
from repro.errors import SqlSyntaxError

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str, *, allow_aggregates: bool = False) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        self.allow_aggregates = allow_aggregates
        self.parameters = 0  # count of ? placeholders, in lexical order

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def check_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in keywords

    def accept_keyword(self, *keywords: str) -> Token | None:
        if self.check_keyword(*keywords):
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            actual = self.peek()
            raise SqlSyntaxError(
                f"expected {keyword}, found {actual.value or 'end of input'!r}",
                actual.position,
            )
        return token

    def accept_op(self, op: str) -> Token | None:
        token = self.peek()
        if token.kind == "OP" and token.value == op:
            return self.advance()
        return None

    def expect_op(self, op: str) -> Token:
        token = self.accept_op(op)
        if token is None:
            actual = self.peek()
            raise SqlSyntaxError(
                f"expected {op!r}, found {actual.value or 'end of input'!r}",
                actual.position,
            )
        return token

    def expect_identifier(self, kind: str = "identifier") -> str:
        token = self.peek()
        # Allow non-reserved use of a few keywords as identifiers? Keep
        # strict: identifiers only.
        if token.kind == "IDENT":
            self.advance()
            return token.value.lower()
        raise SqlSyntaxError(
            f"expected {kind}, found {token.value or 'end of input'!r}",
            token.position,
        )

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    # -- statement dispatch -----------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.kind != "KEYWORD":
            raise SqlSyntaxError(
                f"expected a statement, found {token.value!r}", token.position
            )
        handlers = {
            "EXPLAIN": self._parse_explain,
            "SELECT": self._parse_select,
            "INSERT": self._parse_insert,
            "UPDATE": self._parse_update,
            "DELETE": self._parse_delete,
            "CREATE": self._parse_create,
            "DROP": self._parse_drop,
            "BEGIN": self._parse_begin,
            "COMMIT": self._parse_commit,
            "ROLLBACK": self._parse_rollback,
            "SAVEPOINT": self._parse_savepoint,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise SqlSyntaxError(
                f"unsupported statement {token.value}", token.position
            )
        statement = handler()
        self.accept_op(";")
        if not self.at_end():
            trailing = self.peek()
            raise SqlSyntaxError(
                f"unexpected trailing input {trailing.value!r}", trailing.position
            )
        return statement

    def _parse_explain(self) -> Statement:
        self.expect_keyword("EXPLAIN")
        token = self.peek()
        if self.check_keyword("SELECT"):
            inner: Statement = self._parse_select()
        elif self.check_keyword("UPDATE"):
            inner = self._parse_update()
        elif self.check_keyword("DELETE"):
            inner = self._parse_delete()
        else:
            raise SqlSyntaxError(
                "EXPLAIN supports SELECT, UPDATE, and DELETE", token.position
            )
        return Explain(inner)

    # -- transaction control ------------------------------------------------

    def _parse_begin(self) -> Statement:
        self.expect_keyword("BEGIN")
        return BeginStatement()

    def _parse_commit(self) -> Statement:
        self.expect_keyword("COMMIT")
        return CommitStatement()

    def _parse_rollback(self) -> Statement:
        self.expect_keyword("ROLLBACK")
        savepoint = None
        if self.accept_keyword("TO"):
            savepoint = self.expect_identifier("savepoint name")
        return RollbackStatement(savepoint=savepoint)

    def _parse_savepoint(self) -> Statement:
        self.expect_keyword("SAVEPOINT")
        return SavepointStatement(self.expect_identifier("savepoint name"))

    # -- DDL -----------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.check_keyword("TABLE"):
            return self._parse_create_table()
        if self.check_keyword("UNIQUE", "INDEX"):
            return self._parse_create_index()
        if self.check_keyword("TRIGGER"):
            return self._parse_create_trigger()
        token = self.peek()
        raise SqlSyntaxError(
            f"unsupported CREATE {token.value}", token.position
        )

    def _parse_create_table(self) -> CreateTable:
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_identifier("table name")
        self.expect_op("(")
        columns: list[ColumnDef] = []
        checks: list[Expression] = []
        while True:
            if self.accept_keyword("CHECK"):
                self.expect_op("(")
                checks.append(self.parse_expression())
                self.expect_op(")")
            else:
                columns.append(self._parse_column_def())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return CreateTable(table, columns, checks, if_not_exists)

    def _parse_column_def(self) -> ColumnDef:
        name = self.expect_identifier("column name")
        type_token = self.peek()
        if type_token.kind not in ("IDENT", "KEYWORD"):
            raise SqlSyntaxError("expected column type", type_token.position)
        self.advance()
        column = ColumnDef(name=name, type_name=type_token.value)
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                column.nullable = False
            elif self.accept_keyword("NULL"):
                column.nullable = True
            elif self.accept_keyword("UNIQUE"):
                column.unique = True
            elif self.accept_keyword("DEFAULT"):
                column.default = self._parse_literal_value()
                column.has_default = True
            else:
                break
        return column

    def _parse_literal_value(self) -> Any:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return _number_value(token.value)
        if token.kind == "STRING":
            self.advance()
            return token.value
        if self.accept_keyword("NULL"):
            return None
        if self.accept_keyword("TRUE"):
            return True
        if self.accept_keyword("FALSE"):
            return False
        if token.kind == "OP" and token.value == "-":
            self.advance()
            number = self.peek()
            if number.kind != "NUMBER":
                raise SqlSyntaxError("expected number after '-'", number.position)
            self.advance()
            return -_number_value(number.value)
        raise SqlSyntaxError("expected a literal value", token.position)

    def _parse_create_index(self) -> CreateIndex:
        unique = self.accept_keyword("UNIQUE") is not None
        self.expect_keyword("INDEX")
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        self.expect_op("(")
        column = self.expect_identifier("column name")
        self.expect_op(")")
        kind = "ordered"
        if self.accept_keyword("USING"):
            if self.accept_keyword("HASH"):
                kind = "hash"
            elif self.accept_keyword("ORDERED"):
                kind = "ordered"
            else:
                token = self.peek()
                raise SqlSyntaxError(
                    f"unknown index kind {token.value!r}", token.position
                )
        return CreateIndex(name, table, column, unique, kind)

    def _parse_create_trigger(self) -> CreateTrigger:
        self.expect_keyword("TRIGGER")
        name = self.expect_identifier("trigger name")
        if self.accept_keyword("BEFORE"):
            timing = "before"
        else:
            self.expect_keyword("AFTER")
            timing = "after"
        event_token = self.peek()
        if self.accept_keyword("INSERT"):
            event = "insert"
        elif self.accept_keyword("UPDATE"):
            event = "update"
        elif self.accept_keyword("DELETE"):
            event = "delete"
        else:
            raise SqlSyntaxError(
                "expected INSERT, UPDATE, or DELETE", event_token.position
            )
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        for_each_row = True
        if self.accept_keyword("FOR"):
            self.expect_keyword("EACH")
            if self.accept_keyword("ROW"):
                for_each_row = True
            else:
                self.expect_keyword("STATEMENT")
                for_each_row = False
        when = None
        if self.accept_keyword("WHEN"):
            self.expect_op("(")
            when = self.parse_expression()
            self.expect_op(")")
        self.expect_keyword("EXECUTE")
        callback = self.expect_identifier("callback name")
        return CreateTrigger(
            name=name,
            table=table,
            timing=timing,
            event=event,
            callback=callback,
            when=when,
            for_each_row=for_each_row,
        )

    def _parse_drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return DropTable(self.expect_identifier("table name"), if_exists)
        if self.accept_keyword("INDEX"):
            name = self.expect_identifier("index name")
            self.expect_keyword("ON")
            table = self.expect_identifier("table name")
            return DropIndex(name, table)
        if self.accept_keyword("TRIGGER"):
            return DropTrigger(self.expect_identifier("trigger name"))
        token = self.peek()
        raise SqlSyntaxError(f"unsupported DROP {token.value}", token.position)

    # -- DML -----------------------------------------------------------------

    def _parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: list[str] | None = None
        if self.accept_op("("):
            columns = [self.expect_identifier("column name")]
            while self.accept_op(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_op(")")
        if self.check_keyword("SELECT"):
            return Insert(table, columns, [], select=self._parse_select())
        self.expect_keyword("VALUES")
        rows: list[list[Expression]] = []
        while True:
            self.expect_op("(")
            row = [self.parse_expression()]
            while self.accept_op(","):
                row.append(self.parse_expression())
            self.expect_op(")")
            rows.append(row)
            if not self.accept_op(","):
                break
        return Insert(table, columns, rows)

    def _parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self.expect_identifier("column name")
            self.expect_op("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return Update(table, assignments, where)

    def _parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return Delete(table, where)

    # -- SELECT ----------------------------------------------------------------

    def _parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        previous_aggregates = self.allow_aggregates
        self.allow_aggregates = True
        try:
            items = [self._parse_select_item()]
            while self.accept_op(","):
                items.append(self._parse_select_item())
        finally:
            self.allow_aggregates = previous_aggregates
        select = Select(items=items, distinct=distinct)
        if self.accept_keyword("FROM"):
            select.table = self.expect_identifier("table name")
            select.alias = self._parse_optional_alias()
            while self.check_keyword("JOIN", "INNER", "LEFT"):
                select.joins.append(self._parse_join())
        if self.accept_keyword("WHERE"):
            select.where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            select.group_by.append(self.parse_expression())
            while self.accept_op(","):
                select.group_by.append(self.parse_expression())
        if self.accept_keyword("HAVING"):
            previous_aggregates = self.allow_aggregates
            self.allow_aggregates = True
            try:
                select.having = self.parse_expression()
            finally:
                self.allow_aggregates = previous_aggregates
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            self.allow_aggregates = True
            try:
                select.order_by.append(self._parse_order_item())
                while self.accept_op(","):
                    select.order_by.append(self._parse_order_item())
            finally:
                self.allow_aggregates = False
        if self.accept_keyword("LIMIT"):
            select.limit = int(self._parse_nonnegative_int())
        if self.accept_keyword("OFFSET"):
            select.offset = int(self._parse_nonnegative_int())
        return select

    def _parse_nonnegative_int(self) -> int:
        token = self.peek()
        if token.kind != "NUMBER":
            raise SqlSyntaxError("expected an integer", token.position)
        self.advance()
        value = _number_value(token.value)
        if not isinstance(value, int) or value < 0:
            raise SqlSyntaxError(
                "expected a non-negative integer", token.position
            )
        return value

    def _parse_select_item(self) -> SelectItem:
        if self.accept_op("*"):
            return SelectItem(expression=Literal(None), is_star=True)
        expression = self.parse_expression()
        alias = self._parse_optional_alias()
        return SelectItem(expression=expression, alias=alias)

    def _parse_optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_identifier("alias")
        token = self.peek()
        if token.kind == "IDENT":
            self.advance()
            return token.value.lower()
        return None

    def _parse_join(self) -> JoinClause:
        kind = "inner"
        if self.accept_keyword("INNER"):
            pass
        elif self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            kind = "left"
        self.expect_keyword("JOIN")
        table = self.expect_identifier("table name")
        alias = self._parse_optional_alias()
        self.expect_keyword("ON")
        on = self.parse_expression()
        return JoinClause(table=table, alias=alias, on=on, kind=kind)

    def _parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression, descending)

    # -- expressions ------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == "OP" and token.value in _COMPARISON_OPS:
            self.advance()
            return BinaryOp(token.value, left, self._parse_additive())
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return IsNull(left, negated)
        negated = False
        if self.check_keyword("NOT") and self.peek(1).kind == "KEYWORD" and self.peek(
            1
        ).value in ("IN", "BETWEEN", "LIKE"):
            self.advance()
            negated = True
        if self.accept_keyword("IN"):
            self.expect_op("(")
            if self.check_keyword("SELECT"):
                subquery = self._parse_select()
                self.expect_op(")")
                return InSelect(operand=left, subquery=subquery, negated=negated)
            items = [self.parse_expression()]
            while self.accept_op(","):
                items.append(self.parse_expression())
            self.expect_op(")")
            return InList(left, items, negated)
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self.accept_keyword("LIKE"):
            return Like(left, self._parse_additive(), negated)
        if negated:
            raise SqlSyntaxError(
                "expected IN, BETWEEN, or LIKE after NOT", self.peek().position
            )
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("+", "-", "||"):
                self.advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("*", "/", "%"):
                self.advance()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.accept_op("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return Literal(_number_value(token.value))
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if self.accept_keyword("NULL"):
            return Literal(None)
        if self.accept_keyword("TRUE"):
            return Literal(True)
        if self.accept_keyword("FALSE"):
            return Literal(False)
        if self.accept_keyword("CASE"):
            return self._parse_case()
        if self.accept_keyword("EXISTS"):
            self.expect_op("(")
            subquery = self._parse_select()
            self.expect_op(")")
            return ExistsSelect(subquery=subquery)
        if self.check_keyword("COUNT"):
            # COUNT is a keyword so COUNT(*) can be recognized.
            self.advance()
            return self._parse_call("count", token)
        if token.kind == "IDENT":
            self.advance()
            if self.peek().kind == "OP" and self.peek().value == "(":
                return self._parse_call(token.value.lower(), token)
            if self.accept_op("."):
                column = self.expect_identifier("column name")
                return ColumnRef(column, qualifier=token.value.lower())
            return ColumnRef(token.value.lower())
        if self.accept_op("("):
            expression = self.parse_expression()
            self.expect_op(")")
            return expression
        if self.accept_op("?"):
            index = self.parameters
            self.parameters += 1
            return Parameter(index)
        raise SqlSyntaxError(
            f"unexpected token {token.value or 'end of input'!r}", token.position
        )

    def _parse_case(self) -> Expression:
        branches: list[tuple[Expression, Expression]] = []
        default: Expression | None = None
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            branches.append((condition, self.parse_expression()))
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN", self.peek().position)
        return Case(branches, default)

    def _parse_call(self, name: str, name_token: Token) -> Expression:
        self.expect_op("(")
        if name in AGGREGATE_NAMES and self.allow_aggregates:
            distinct = self.accept_keyword("DISTINCT") is not None
            if self.accept_op("*"):
                self.expect_op(")")
                if name != "count":
                    raise SqlSyntaxError(
                        f"{name}(*) is not valid", name_token.position
                    )
                return AggregateCall(name="count", argument=None, distinct=distinct)
            argument = self.parse_expression()
            self.expect_op(")")
            return AggregateCall(name=name, argument=argument, distinct=distinct)
        args: list[Expression] = []
        if not self.accept_op(")"):
            args.append(self.parse_expression())
            while self.accept_op(","):
                args.append(self.parse_expression())
            self.expect_op(")")
        return FunctionCall(name, args)


def _number_value(text: str) -> int | float:
    if any(ch in text for ch in ".eE"):
        return float(text)
    return int(text)


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    statement.parameter_count = parser.parameters
    return statement


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression — the entry point for rule
    conditions and subscription filters supplied as text."""
    parser = _Parser(text)
    expression = parser.parse_expression()
    if not parser.at_end():
        trailing = parser.peek()
        raise SqlSyntaxError(
            f"unexpected trailing input {trailing.value!r}", trailing.position
        )
    return expression
