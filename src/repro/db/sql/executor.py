"""Statement execution against a :class:`repro.db.database.Database`.

The executor is stateless: it receives the database facade and the
current connection, plans row access, and routes every mutation through
the database's core ``insert_row``/``update_row``/``delete_row``
methods so SQL and the programmatic API share one code path (locks,
WAL, triggers, undo).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    VectorFallback,
    compile_expression,
    compile_predicate,
    compile_vector_extractor,
    compile_vector_predicate,
    evaluate_predicate,
)
from repro.db.index import _sort_key
from repro.db.sql.ast import (
    AggregateCall,
    BeginStatement,
    CommitStatement,
    CreateIndex,
    CreateTable,
    CreateTrigger,
    Delete,
    DropIndex,
    DropTable,
    DropTrigger,
    ExistsSelect,
    Explain,
    InSelect,
    Insert,
    JoinClause,
    RollbackStatement,
    SavepointStatement,
    Select,
    SelectItem,
    Statement,
    Update,
)
from repro.db.sql.planner import plan_access
from repro.errors import DatabaseError, ExpressionError, SqlSyntaxError

if TYPE_CHECKING:
    from repro.db.database import Connection, Database


@dataclass
class Result:
    """Outcome of one statement execution."""

    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    rowcount: int = 0
    lastrowid: int | None = None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (e.g. ``SELECT count(*)``)."""
        if not self.rows:
            return None
        first = self.rows[0]
        if not self.columns:
            return next(iter(first.values()), None)
        return first[self.columns[0]]

    def column(self, name: str) -> list[Any]:
        return [row[name] for row in self.rows]


def execute(db: "Database", conn: "Connection", statement: Statement) -> Result:
    """Execute a parsed statement; transaction control is handled by the
    connection before this is reached."""
    if isinstance(statement, Explain):
        return _execute_explain(db, conn, statement)
    if isinstance(statement, Select):
        return _execute_select(db, conn, statement)
    if isinstance(statement, Insert):
        return _execute_insert(db, conn, statement)
    if isinstance(statement, Update):
        return _execute_update(db, conn, statement)
    if isinstance(statement, Delete):
        return _execute_delete(db, conn, statement)
    if isinstance(statement, CreateTable):
        db.create_table_from_def(conn, statement)
        return Result()
    if isinstance(statement, DropTable):
        db.drop_table(statement.table, if_exists=statement.if_exists, conn=conn)
        return Result()
    if isinstance(statement, CreateIndex):
        db.create_index(
            statement.name,
            statement.table,
            statement.column,
            unique=statement.unique,
            kind=statement.kind,
            conn=conn,
        )
        return Result()
    if isinstance(statement, DropIndex):
        db.drop_index(statement.name, statement.table)
        return Result()
    if isinstance(statement, CreateTrigger):
        db.create_trigger_from_def(statement)
        return Result()
    if isinstance(statement, DropTrigger):
        db.drop_trigger(statement.name)
        return Result()
    if isinstance(
        statement,
        (BeginStatement, CommitStatement, RollbackStatement, SavepointStatement),
    ):
        raise DatabaseError(
            "transaction control must be handled by the connection"
        )
    raise DatabaseError(f"unsupported statement {type(statement).__name__}")


def _execute_explain(db: "Database", conn: "Connection", stmt: Explain) -> Result:
    """Describe the access path the inner statement would use."""
    steps: list[str] = []
    inner = stmt.statement
    if isinstance(inner, (Update, Delete)):
        table = db.catalog.table(inner.table)
        where = _resolve_subqueries(db, conn, inner.where)
        steps.append(plan_access(table, where).explain())
        steps.append(
            "UPDATE rows" if isinstance(inner, Update) else "DELETE rows"
        )
    elif isinstance(inner, Select):
        if inner.table is None:
            steps.append("CONSTANT (no table)")
        else:
            where = _resolve_subqueries(db, conn, inner.where)
            if inner.joins:
                steps.append(f"SCAN {inner.table}")
                for join in inner.joins:
                    strategy = (
                        "HASH JOIN"
                        if _equi_join_columns(join.on, join.alias or join.table)
                        else "NESTED LOOP"
                    )
                    steps.append(f"{strategy} {join.kind.upper()} {join.table}")
                if where is not None:
                    steps.append("FILTER residual WHERE")
            else:
                table = db.catalog.table(inner.table)
                steps.append(plan_access(table, where).explain())
        if inner.group_by or _collect_aggregates(inner):
            steps.append("AGGREGATE")
        if inner.distinct:
            steps.append("DISTINCT")
        if inner.order_by:
            steps.append("SORT")
        if inner.limit is not None or inner.offset:
            steps.append("LIMIT/OFFSET")
    else:
        raise DatabaseError("EXPLAIN supports SELECT, UPDATE, and DELETE")
    rows = [{"step": index + 1, "operation": text}
            for index, text in enumerate(steps)]
    return Result(columns=["step", "operation"], rows=rows, rowcount=len(rows))


# --------------------------------------------------------------------------
# DML
# --------------------------------------------------------------------------


def _execute_insert(db: "Database", conn: "Connection", stmt: Insert) -> Result:
    from repro.db.triggers import TriggerEvent, TriggerTiming

    table = db.catalog.table(stmt.table)
    schema = table.schema
    txid = conn.require_transaction().txid
    db.fire_statement_triggers(
        table.name, TriggerEvent.INSERT, TriggerTiming.BEFORE, txid, 0, connection=conn
    )
    result = Result()
    if stmt.select is not None:
        selected = _execute_select(db, conn, stmt.select)
        # Positional semantics: SELECT output maps onto the target's
        # declared columns (or the explicit column list) by position.
        names = (
            stmt.columns if stmt.columns is not None else schema.column_names
        )
        if len(names) != len(selected.columns):
            raise SqlSyntaxError(
                f"INSERT target has {len(names)} columns; SELECT produced "
                f"{len(selected.columns)}"
            )
        for source_row in selected.rows:
            values = {
                name: source_row[column]
                for name, column in zip(names, selected.columns)
            }
            result.lastrowid = db.insert_row(stmt.table, values, conn=conn)
            result.rowcount += 1
        db.fire_statement_triggers(
            table.name, TriggerEvent.INSERT, TriggerTiming.AFTER, txid,
            result.rowcount, connection=conn,
        )
        return result
    for value_exprs in stmt.rows:
        if stmt.columns is not None:
            if len(stmt.columns) != len(value_exprs):
                raise SqlSyntaxError(
                    f"INSERT has {len(value_exprs)} values for "
                    f"{len(stmt.columns)} columns"
                )
            names = stmt.columns
        else:
            if len(value_exprs) != len(schema.columns):
                raise SqlSyntaxError(
                    f"INSERT has {len(value_exprs)} values; table "
                    f"{schema.name!r} has {len(schema.columns)} columns"
                )
            names = schema.column_names
        values = {
            name: compile_expression(expression)({})
            for name, expression in zip(names, value_exprs)
        }
        result.lastrowid = db.insert_row(stmt.table, values, conn=conn)
        result.rowcount += 1
    db.fire_statement_triggers(
        table.name, TriggerEvent.INSERT, TriggerTiming.AFTER, txid, result.rowcount, connection=conn
    )
    return result


def _execute_update(db: "Database", conn: "Connection", stmt: Update) -> Result:
    from repro.db.triggers import TriggerEvent, TriggerTiming

    db.lock_table_exclusive(conn, stmt.table)
    table = db.catalog.table(stmt.table)
    txid = conn.require_transaction().txid
    db.fire_statement_triggers(
        table.name, TriggerEvent.UPDATE, TriggerTiming.BEFORE, txid, 0, connection=conn
    )
    where = _resolve_subqueries(db, conn, stmt.where)
    assignments = [
        (column, _resolve_subqueries(db, conn, expression))
        for column, expression in stmt.assignments
    ]
    stmt = Update(stmt.table, assignments, where)
    path = plan_access(table, stmt.where)
    targets = [(rowid, row) for rowid, row in path.rows()]
    compiled_assignments = [
        (column, compile_expression(expression))
        for column, expression in stmt.assignments
    ]
    count = 0
    for rowid, row in targets:
        updates = {
            column: assignment_fn(row)
            for column, assignment_fn in compiled_assignments
        }
        db.update_row(stmt.table, rowid, updates, conn=conn)
        count += 1
    db.fire_statement_triggers(
        table.name, TriggerEvent.UPDATE, TriggerTiming.AFTER, txid, count, connection=conn
    )
    return Result(rowcount=count)


def _execute_delete(db: "Database", conn: "Connection", stmt: Delete) -> Result:
    from repro.db.triggers import TriggerEvent, TriggerTiming

    db.lock_table_exclusive(conn, stmt.table)
    table = db.catalog.table(stmt.table)
    txid = conn.require_transaction().txid
    db.fire_statement_triggers(
        table.name, TriggerEvent.DELETE, TriggerTiming.BEFORE, txid, 0, connection=conn
    )
    path = plan_access(table, _resolve_subqueries(db, conn, stmt.where))
    targets = [rowid for rowid, _row in path.rows()]
    for rowid in targets:
        db.delete_row(stmt.table, rowid, conn=conn)
    db.fire_statement_triggers(
        table.name, TriggerEvent.DELETE, TriggerTiming.AFTER, txid, len(targets), connection=conn
    )
    return Result(rowcount=len(targets))


# --------------------------------------------------------------------------
# SELECT
# --------------------------------------------------------------------------


def _execute_select(db: "Database", conn: "Connection", stmt: Select) -> Result:
    if stmt.table is None:
        # Table-less SELECT: evaluate expressions against an empty row.
        row, columns = _project(stmt.items, {}, aggregates=None, ordinal=[0])
        return Result(columns=columns, rows=[row], rowcount=1)

    db.lock_table_shared(conn, stmt.table)
    for join in stmt.joins:
        db.lock_table_shared(conn, join.table)

    where = _resolve_subqueries(db, conn, stmt.where)
    aggregate_nodes = _collect_aggregates(stmt)
    source_rows: list[dict[str, Any]] = []
    output_pairs: list[tuple[dict[str, Any], dict[str, Any]]] | None = None

    if not stmt.joins:
        table = db.catalog.table(stmt.table)
        base_alias = stmt.alias or stmt.table
        if stmt.group_by or aggregate_nodes:
            # Aggregate over one table: try scan→mask→reduce over the
            # columnar projection.  Returns None (ineligible shape, or
            # a kernel raised VectorFallback) -> row path below.
            output_pairs = _try_vectorized(
                table, base_alias, stmt, where, aggregate_nodes
            )
        if output_pairs is None:
            # Single-table SELECT: let the planner pick an index path.
            # The path re-applies the full WHERE as a residual filter,
            # so no second filtering pass is needed.  Qualified
            # references in the WHERE (``o.price``) still resolve:
            # ColumnRef falls back to the bare column name.
            path = plan_access(table, where)
            source_rows = [
                _qualify(row, base_alias) for _rowid, row in path.rows()
            ]
    else:
        source_rows = list(_scan_from_clause(db, stmt))
        if where is not None:
            where_predicate = compile_predicate(where)
            source_rows = [row for row in source_rows if where_predicate(row)]

    if output_pairs is None:
        if stmt.group_by or aggregate_nodes:
            output_pairs = _execute_grouped(stmt, source_rows, aggregate_nodes)
        else:
            output_pairs = []
            ordinal = [0]
            for row in source_rows:
                projected, columns = _project(
                    stmt.items, row, aggregates=None, ordinal=ordinal
                )
                output_pairs.append((projected, row))

    columns = _output_columns(stmt, source_rows)

    if stmt.distinct:
        seen: set[tuple[Any, ...]] = set()
        unique_pairs = []
        for projected, base in output_pairs:
            key = tuple(_sort_key(projected.get(name)) for name in columns)
            if key not in seen:
                seen.add(key)
                unique_pairs.append((projected, base))
        output_pairs = unique_pairs

    if stmt.order_by:
        def order_key(pair: tuple[dict[str, Any], dict[str, Any]]):
            projected, base = pair
            merged = {**base, **projected}
            keys = []
            for index, item in enumerate(stmt.order_by):
                hidden = f"__order_{index}"
                if hidden in base:
                    value = base[hidden]  # precomputed by the grouped path
                else:
                    value = _evaluate_ordering(item.expression, merged, projected)
                key = _sort_key(value)
                keys.append(_Reversed(key) if item.descending else key)
            return keys

        output_pairs.sort(key=order_key)

    rows = [projected for projected, _base in output_pairs]
    if stmt.offset:
        rows = rows[stmt.offset :]
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return Result(columns=columns, rows=rows, rowcount=len(rows))


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _evaluate_ordering(
    expression: Expression, merged: dict[str, Any], projected: dict[str, Any]
) -> Any:
    # An ORDER BY item may name a projection alias not present in the
    # base row; aliases win, then base columns.
    if isinstance(expression, ColumnRef) and expression.qualifier is None:
        if expression.name in projected:
            return projected[expression.name]
    return expression.evaluate(merged)


def _scan_from_clause(db: "Database", stmt: Select) -> Iterator[dict[str, Any]]:
    """Produce joined rows with both bare and qualified column keys."""
    base_table = db.catalog.table(stmt.table)
    base_alias = stmt.alias or stmt.table

    rows: Iterator[dict[str, Any]] = (
        _qualify(row, base_alias) for _rowid, row in base_table.scan_internal()
    )
    for join in stmt.joins:
        rows = _apply_join(db, rows, join)
    return rows


def _qualify(row: dict[str, Any], alias: str) -> dict[str, Any]:
    qualified = dict(row)
    for key, value in row.items():
        qualified[f"{alias}.{key}"] = value
    return qualified


def _apply_join(
    db: "Database", left_rows: Iterator[dict[str, Any]], join: JoinClause
) -> Iterator[dict[str, Any]]:
    right_table = db.catalog.table(join.table)
    right_alias = join.alias or join.table
    right_rows = [
        _qualify(row, right_alias) for _rowid, row in right_table.scan_internal()
    ]
    on_predicate = compile_predicate(join.on)

    # Equi-join fast path: build a hash table on the right side.
    equi = _equi_join_columns(join.on, right_alias)
    if equi is not None:
        left_expr, right_key = equi
        left_key_fn = compile_expression(left_expr)
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for row in right_rows:
            key = row.get(right_key)
            if key is not None:
                buckets.setdefault(_hash_fold(key), []).append(row)
        for left in left_rows:
            try:
                key = left_key_fn(left)
            except ExpressionError:
                key = None
            matches = buckets.get(_hash_fold(key), []) if key is not None else []
            emitted = False
            for right in matches:
                merged = _merge_join_row(left, right)
                if on_predicate(merged):
                    emitted = True
                    yield merged
            if not emitted and join.kind == "left":
                yield _merge_join_row(left, _null_row(right_table, right_alias))
        return

    for left in left_rows:
        emitted = False
        for right in right_rows:
            merged = _merge_join_row(left, right)
            if on_predicate(merged):
                emitted = True
                yield merged
        if not emitted and join.kind == "left":
            yield _merge_join_row(left, _null_row(right_table, right_alias))


def _merge_join_row(
    left: dict[str, Any], right: dict[str, Any]
) -> dict[str, Any]:
    # Qualified keys from both sides always survive; on bare-name
    # collision the left (earlier) binding wins, matching documented
    # ambiguity rules.
    merged = dict(right)
    merged.update(left)
    return merged


def _null_row(table: Any, alias: str) -> dict[str, Any]:
    row = {name: None for name in table.schema.column_names}
    return _qualify(row, alias)


def _hash_fold(key: Any) -> Any:
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, float) and key.is_integer():
        return int(key)
    return key


def _equi_join_columns(
    on: Expression, right_alias: str
) -> tuple[Expression, str] | None:
    """Detect ``<left expr> = <right.col>`` (either side order) so the
    join can be hashed. Returns (left-side expression, right row key)."""
    if not (isinstance(on, BinaryOp) and on.op == "="):
        return None
    left, right = on.left, on.right
    for first, second in ((left, right), (right, left)):
        if (
            isinstance(second, ColumnRef)
            and second.qualifier == right_alias
        ):
            referenced = (
                first.qualifier
                if isinstance(first, ColumnRef)
                else None
            )
            if referenced != right_alias:
                return first, second.full_name
    return None


# --------------------------------------------------------------------------
# Vectorized aggregate fast path
# --------------------------------------------------------------------------
#
# Eligible shape: single-table SELECT (no joins, no ``*`` items, no
# DISTINCT aggregates) whose WHERE, GROUP BY keys, and aggregate
# arguments all vector-compile against the table's column kinds.  The
# statement then runs scan→mask→reduce over the table's
# :class:`~repro.db.columnar.ColumnStore` — zero per-row Python closure
# calls — and feeds the same :func:`_finalize_groups` tail as the row
# path.  Anything else (including a kernel raising
# :class:`VectorFallback` at runtime) reruns on the row path unchanged.

_VECTORIZED_ENABLED = True

#: Observability counters, also asserted on by the fast-path smoke
#: tests: fast_path counts statements served from the ColumnStore,
#: fallback_compile counts ineligible statements, fallback_runtime
#: counts batches a compiled kernel refused (e.g. unencodable column).
VECTOR_STATS = {"fast_path": 0, "fallback_compile": 0, "fallback_runtime": 0}


def set_vectorized(enabled: bool) -> bool:
    """Toggle the columnar fast path; returns the previous setting."""
    global _VECTORIZED_ENABLED
    previous = _VECTORIZED_ENABLED
    _VECTORIZED_ENABLED = bool(enabled)
    return previous


def _try_vectorized(
    table: Any,
    base_alias: str,
    stmt: Select,
    where: Expression | None,
    aggregate_nodes: list[AggregateCall],
) -> list[tuple[dict[str, Any], dict[str, Any]]] | None:
    if not _VECTORIZED_ENABLED:
        return None
    from repro.db import columnar

    np = columnar.np
    if np is None:
        return None
    if any(item.is_star for item in stmt.items):
        VECTOR_STATS["fallback_compile"] += 1
        return None
    if any(node.distinct for node in aggregate_nodes):
        VECTOR_STATS["fallback_compile"] += 1
        return None

    kinds = columnar.vector_kinds(table.schema)
    try:
        where_fn = (
            compile_vector_predicate(where, kinds) if where is not None else None
        )
        key_extractors = [
            compile_vector_extractor(expression, kinds)
            for expression in stmt.group_by
        ]
        agg_specs: dict[str, tuple[str, str, Any]] = {}
        for node in aggregate_nodes:
            key = _aggregate_key(node)
            if key in agg_specs:
                continue
            if node.argument is None:  # COUNT(*)
                agg_specs[key] = (node.name, "star", None)
                continue
            flavor, payload = compile_vector_extractor(node.argument, kinds)
            if node.name in ("sum", "avg", "stddev"):
                # The row path raises on textual values here (sum of
                # str); fall back so it raises identically.
                if flavor == "text":
                    raise VectorFallback("text argument to numeric aggregate")
                if flavor == "const" and not (
                    payload is None or isinstance(payload, (bool, int, float))
                ):
                    raise VectorFallback("non-numeric constant aggregate argument")
            agg_specs[key] = (node.name, flavor, payload)
    except VectorFallback:
        VECTOR_STATS["fallback_compile"] += 1
        return None

    try:
        result = _run_vectorized(
            table, base_alias, stmt, where_fn, key_extractors, agg_specs, np
        )
    except VectorFallback:
        VECTOR_STATS["fallback_runtime"] += 1
        return None
    VECTOR_STATS["fast_path"] += 1
    return result


def _run_vectorized(
    table: Any,
    base_alias: str,
    stmt: Select,
    where_fn: Any,
    key_extractors: list[tuple[str, Any]],
    agg_specs: dict[str, tuple[str, str, Any]],
    np: Any,
) -> list[tuple[dict[str, Any], dict[str, Any]]]:
    batch = table.column_store().batch()
    if where_fn is not None:
        idx = np.flatnonzero(where_fn(batch))
    else:
        idx = np.arange(batch.n)
    k = int(idx.shape[0])

    # Each distinct extractor closure is evaluated once per statement
    # and restricted to the WHERE-selected rows; shared sub-expressions
    # between GROUP BY keys and aggregate arguments share the work.
    evaluated: dict[int, tuple] = {}

    def run_extractor(flavor: str, payload: Any) -> tuple:
        if flavor == "const":
            return ("const", payload)
        cache_key = id(payload)
        cached = evaluated.get(cache_key)
        if cached is None:
            raw = payload(batch)
            if flavor == "text":
                cached = ("text", raw[0][idx], ~raw[1][idx], raw[2])
            elif flavor == "bool":
                cached = ("bool", raw[0][idx], ~raw[1][idx])
            else:
                cached = ("num", raw[0][idx], ~raw[1][idx])
            evaluated[cache_key] = cached
        return cached

    if not stmt.group_by:
        aggregate_values = {}
        for key, (name, flavor, payload) in agg_specs.items():
            if flavor == "star":
                aggregate_values[key] = k
            else:
                aggregate_values[key] = _ungrouped_aggregate(
                    name, run_extractor(flavor, payload), k, np
                )
        representative = _vector_representative(
            table, base_alias, batch, idx, 0
        ) if k else {}
        return _finalize_groups(stmt, [(representative, aggregate_values)])

    if k == 0:
        return _finalize_groups(stmt, [])  # No rows -> no groups.

    # Dense per-key codes (0 = NULL, like the row path's _hash_fold
    # tuple keys: equal raw values get equal codes within one column).
    code_arrays = []
    for flavor, payload in key_extractors:
        data = run_extractor(flavor, payload)
        if data[0] == "const":
            code_arrays.append(np.zeros(k, dtype=np.int64))
        elif data[0] == "bool":
            code_arrays.append(np.where(data[2], data[1].astype(np.int64) + 1, 0))
        elif data[0] == "text":
            code_arrays.append(np.where(data[2], data[1] + 1, 0))
        else:
            _, inverse = np.unique(data[1], return_inverse=True)
            code_arrays.append(np.where(data[2], inverse.reshape(-1) + 1, 0))
    if len(code_arrays) == 1:
        _, inv = np.unique(code_arrays[0], return_inverse=True)
    else:
        _, inv = np.unique(
            np.column_stack(code_arrays), axis=0, return_inverse=True
        )
    inv = inv.reshape(-1)
    group_count = int(inv.max()) + 1

    # First-occurrence order (matches the row path's dict insertion
    # order over a heap scan) and segment boundaries for reduceat.
    positions = np.arange(k)
    first = np.full(group_count, k, dtype=np.int64)
    np.minimum.at(first, inv, positions)
    order = np.argsort(first, kind="stable")
    sort_order = np.argsort(inv, kind="stable")
    sorted_inv = inv[sort_order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_inv[1:] != sorted_inv[:-1]))
    )
    sizes = np.bincount(inv, minlength=group_count)

    agg_results: dict[str, list[Any]] = {}
    for key, (name, flavor, payload) in agg_specs.items():
        if flavor == "star":
            agg_results[key] = [int(size) for size in sizes]
        else:
            agg_results[key] = _grouped_aggregate(
                name,
                run_extractor(flavor, payload),
                sort_order,
                sorted_inv,
                starts,
                sizes,
                group_count,
                np,
            )

    group_data = []
    for group_id in order.tolist():
        representative = _vector_representative(
            table, base_alias, batch, idx, int(first[group_id])
        )
        aggregate_values = {
            key: values[group_id] for key, values in agg_results.items()
        }
        group_data.append((representative, aggregate_values))
    return _finalize_groups(stmt, group_data)


def _vector_representative(
    table: Any, base_alias: str, batch: Any, idx: Any, position: int
) -> dict[str, Any]:
    rowid = int(batch.rowids[idx[position]])
    raw = table.get(rowid)
    if raw is None:
        raise VectorFallback("row vanished under vectorized execution")
    return _qualify(raw, base_alias)


def _const_aggregate(name: str, value: Any, k: int) -> Any:
    """Aggregate over ``k`` copies of one constant, matching
    ``_compute_aggregate`` on ``[value] * k`` exactly."""
    if name == "count":
        return k if value is not None else 0
    if value is None or k == 0:
        return None
    if name in ("min", "max"):
        return value
    if name == "sum":
        return value * k
    if name == "avg":
        return (value * k) / k
    # stddev of identical values: zero spread, None below two samples.
    return 0.0 if k >= 2 else None


def _ungrouped_aggregate(name: str, data: tuple, k: int, np: Any) -> Any:
    tag = data[0]
    if tag == "const":
        return _const_aggregate(name, data[1], k)
    if tag == "text":
        codes, valid, dictionary = data[1], data[2], data[3]
        selected = codes[valid]
        if name == "count":
            return int(selected.shape[0])
        if selected.shape[0] == 0:
            return None
        if name == "min":
            return dictionary[int(selected.min())]
        return dictionary[int(selected.max())]  # max (others screened)
    is_bool = tag == "bool"
    values = data[1].astype(np.int64) if is_bool else data[1]
    selected = values[data[2]]
    count = int(selected.shape[0])
    if name == "count":
        return count
    if count == 0:
        return None
    if name == "min":
        result = selected.min().item()
        return bool(result) if is_bool else result
    if name == "max":
        result = selected.max().item()
        return bool(result) if is_bool else result
    total = selected.sum().item()
    if name == "sum":
        return total
    if name == "avg":
        return total / count
    if count < 2:  # stddev
        return None
    deviations = selected.astype(np.float64) - (total / count)
    return math.sqrt(float((deviations * deviations).sum()) / (count - 1))


def _grouped_aggregate(
    name: str,
    data: tuple,
    sort_order: Any,
    sorted_inv: Any,
    starts: Any,
    sizes: Any,
    group_count: int,
    np: Any,
) -> list[Any]:
    """Per-group aggregate values via segment reductions (reduceat over
    rows sorted by group id, stable so within-group order is heap
    order).  Invalid (NULL) slots carry the reduction's identity."""
    tag = data[0]
    if tag == "const":
        return [_const_aggregate(name, data[1], int(size)) for size in sizes]
    is_text = tag == "text"
    is_bool = tag == "bool"
    if is_bool:
        values = data[1].astype(np.int64)
    else:
        values = data[1]
    valid = data[2]
    values_sorted = values[sort_order]
    valid_sorted = valid[sort_order]
    # bool reduceat would OR, not count — cast before reducing.
    counts = np.add.reduceat(valid_sorted.astype(np.int64), starts)
    if name == "count":
        return [int(count) for count in counts]
    if name in ("min", "max"):
        if values_sorted.dtype == np.int64:
            sentinel = (
                np.iinfo(np.int64).max if name == "min" else np.iinfo(np.int64).min
            )
        else:
            sentinel = np.inf if name == "min" else -np.inf
        masked = np.where(valid_sorted, values_sorted, sentinel)
        reducer = np.minimum if name == "min" else np.maximum
        reduced = reducer.reduceat(masked, starts)
        results: list[Any] = []
        for group_id in range(group_count):
            if counts[group_id] == 0:
                results.append(None)
            elif is_text:
                results.append(data[3][int(reduced[group_id])])
            elif is_bool:
                results.append(bool(reduced[group_id]))
            else:
                results.append(reduced[group_id].item())
        return results
    # sum / avg / stddev (numeric flavors only; text screened at compile).
    masked = np.where(valid_sorted, values_sorted, 0)
    totals = np.add.reduceat(masked, starts)
    if name == "sum":
        return [
            totals[group_id].item() if counts[group_id] else None
            for group_id in range(group_count)
        ]
    if name == "avg":
        return [
            totals[group_id].item() / int(counts[group_id])
            if counts[group_id]
            else None
            for group_id in range(group_count)
        ]
    # stddev: two-pass, same formula as _compute_aggregate.
    means = np.divide(
        totals.astype(np.float64),
        counts.astype(np.float64),
        out=np.zeros(group_count),
        where=counts > 0,
    )
    deviations = np.where(
        valid_sorted, values_sorted.astype(np.float64) - means[sorted_inv], 0.0
    )
    squares = np.add.reduceat(deviations * deviations, starts)
    results = []
    for group_id in range(group_count):
        if counts[group_id] < 2:
            results.append(None)
        else:
            results.append(
                math.sqrt(squares[group_id] / (int(counts[group_id]) - 1))
            )
    return results


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------


def _collect_aggregates(stmt: Select) -> list[AggregateCall]:
    found: list[AggregateCall] = []

    def walk(expression: Expression) -> None:
        if isinstance(expression, AggregateCall):
            found.append(expression)
            return
        for child in expression.children():
            walk(child)

    for item in stmt.items:
        if not item.is_star:
            walk(item.expression)
    if stmt.having is not None:
        walk(stmt.having)
    for order in stmt.order_by:
        walk(order.expression)
    return found


def _aggregate_key(node: AggregateCall) -> str:
    return repr(node)


def _compute_aggregate(
    node: AggregateCall, rows: list[dict[str, Any]]
) -> Any:
    if node.argument is None:  # COUNT(*)
        return len(rows)
    values = []
    for row in rows:
        value = node.argument.evaluate(row)
        if value is not None:
            values.append(value)
    if node.distinct:
        unique: list[Any] = []
        seen: set[Any] = set()
        for value in values:
            folded = _hash_fold(value)
            if folded not in seen:
                seen.add(folded)
                unique.append(value)
        values = unique
    name = node.name
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "stddev":
        if len(values) < 2:
            return None
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        return math.sqrt(variance)
    raise ExpressionError(f"unknown aggregate {name!r}")


def _rewrite_tree(
    expression: Expression, visit: "Any"
) -> Expression:
    """Rebuild an expression tree bottom-up.

    ``visit(node)`` may return a replacement node (stopping descent into
    it) or None to recurse into the node's children normally.
    """
    replacement = visit(expression)
    if replacement is not None:
        return replacement

    def recurse(node: Expression) -> Expression:
        return _rewrite_tree(node, visit)

    if isinstance(expression, (Literal, ColumnRef)):
        return expression
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op, recurse(expression.left), recurse(expression.right)
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, recurse(expression.operand))
    if isinstance(expression, IsNull):
        return IsNull(recurse(expression.operand), expression.negated)
    if isinstance(expression, InList):
        return InList(
            recurse(expression.operand),
            [recurse(item) for item in expression.items],
            expression.negated,
        )
    if isinstance(expression, Between):
        return Between(
            recurse(expression.operand),
            recurse(expression.low),
            recurse(expression.high),
            expression.negated,
        )
    if isinstance(expression, Like):
        return Like(
            recurse(expression.operand),
            recurse(expression.pattern),
            expression.negated,
        )
    if isinstance(expression, Case):
        return Case(
            [(recurse(cond), recurse(value)) for cond, value in expression.branches],
            recurse(expression.default) if expression.default is not None else None,
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name, [recurse(arg) for arg in expression.args]
        )
    if isinstance(expression, AggregateCall):
        if expression.argument is None:
            return expression
        return AggregateCall(
            name=expression.name,
            argument=recurse(expression.argument),
            distinct=expression.distinct,
        )
    return expression


def _substitute_aggregates(
    expression: Expression, values: dict[str, Any]
) -> Expression:
    """Rebuild the tree with AggregateCall nodes replaced by Literals."""

    def visit(node: Expression) -> Expression | None:
        if isinstance(node, AggregateCall):
            return Literal(values[_aggregate_key(node)])
        return None

    return _rewrite_tree(expression, visit)


def _resolve_subqueries(
    db: "Database", conn: "Connection", expression: Expression | None
) -> Expression | None:
    """Materialize uncorrelated subqueries: ``IN (SELECT ...)`` becomes
    a literal IN-list, ``EXISTS (SELECT ...)`` a boolean literal.

    Each subquery runs exactly once per statement.  Correlated
    subqueries (referencing outer columns) fail inside the subquery's
    own evaluation with an unknown-column error — documented as
    unsupported.
    """
    if expression is None:
        return None

    def visit(node: Expression) -> Expression | None:
        if isinstance(node, InSelect):
            result = _execute_select(db, conn, node.subquery)
            if len(result.columns) != 1:
                raise SqlSyntaxError(
                    "IN (SELECT ...) requires a single-column subquery"
                )
            column = result.columns[0]
            items: list[Expression] = [
                Literal(row[column]) for row in result.rows
            ]
            operand = _resolve_subqueries(db, conn, node.operand)
            return InList(operand, items, node.negated)
        if isinstance(node, ExistsSelect):
            result = _execute_select(db, conn, node.subquery)
            exists = len(result.rows) > 0
            return Literal(not exists if node.negated else exists)
        return None

    return _rewrite_tree(expression, visit)


def _execute_grouped(
    stmt: Select,
    source_rows: list[dict[str, Any]],
    aggregate_nodes: list[AggregateCall],
) -> list[tuple[dict[str, Any], dict[str, Any]]]:
    groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
    if stmt.group_by:
        for row in source_rows:
            key = tuple(
                _hash_fold(expression.evaluate(row)) for expression in stmt.group_by
            )
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = source_rows  # One global group (possibly empty).

    group_data = []
    for _key, rows in groups.items():
        representative = rows[0] if rows else {}
        aggregate_values = {
            _aggregate_key(node): _compute_aggregate(node, rows)
            for node in aggregate_nodes
        }
        group_data.append((representative, aggregate_values))
    return _finalize_groups(stmt, group_data)


def _finalize_groups(
    stmt: Select,
    group_data: list[tuple[dict[str, Any], dict[str, Any]]],
) -> list[tuple[dict[str, Any], dict[str, Any]]]:
    """Shared tail of grouped execution: HAVING, projection, and ORDER
    BY precomputation over ``(representative, aggregate_values)`` pairs.
    Both the row path and the vectorized fast path feed this, so result
    shaping is identical by construction."""
    output: list[tuple[dict[str, Any], dict[str, Any]]] = []
    ordinal = [0]
    for representative, aggregate_values in group_data:
        if stmt.having is not None:
            having = _substitute_aggregates(stmt.having, aggregate_values)
            if not evaluate_predicate(having, representative):
                continue
        projected, _columns = _project(
            stmt.items, representative, aggregates=aggregate_values, ordinal=ordinal
        )
        base = dict(representative)
        # Precompute ORDER BY values so sorting never re-encounters a
        # raw AggregateCall node.
        for index, order in enumerate(stmt.order_by):
            substituted = _substitute_aggregates(
                order.expression, aggregate_values
            )
            try:
                base[f"__order_{index}"] = substituted.evaluate(
                    {**base, **projected}
                )
            except ExpressionError:
                base[f"__order_{index}"] = projected.get(
                    _item_name_for_order(order.expression, projected)
                )
        output.append((projected, base))
    return output


def _item_name_for_order(expression: Expression, projected: dict[str, Any]) -> str:
    if isinstance(expression, ColumnRef) and expression.name in projected:
        return expression.name
    return ""


# --------------------------------------------------------------------------
# Projection
# --------------------------------------------------------------------------


def _item_name(item: SelectItem, ordinal: int) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, AggregateCall):
        return expression.name
    return f"col{ordinal}"


def _project(
    items: list[SelectItem],
    row: dict[str, Any],
    aggregates: dict[str, Any] | None,
    ordinal: list[int],
) -> tuple[dict[str, Any], list[str]]:
    projected: dict[str, Any] = {}
    columns: list[str] = []
    position = 0
    for item in items:
        if item.is_star:
            for key, value in row.items():
                if "." in key:
                    continue  # Qualified duplicates stay internal.
                if key not in projected:
                    projected[key] = value
                    columns.append(key)
            continue
        position += 1
        name = _item_name(item, position)
        expression = item.expression
        if aggregates is not None:
            expression = _substitute_aggregates(expression, aggregates)
        projected[name] = expression.evaluate(row)
        if name not in columns:
            columns.append(name)
    return projected, columns


def _output_columns(stmt: Select, source_rows: list[dict[str, Any]]) -> list[str]:
    columns: list[str] = []
    position = 0
    for item in stmt.items:
        if item.is_star:
            if source_rows:
                for key in source_rows[0]:
                    if "." not in key and key not in columns:
                        columns.append(key)
            continue
        position += 1
        name = _item_name(item, position)
        if name not in columns:
            columns.append(name)
    return columns
