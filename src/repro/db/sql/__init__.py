"""SQL subset: lexer → parser → planner → executor.

Supported statements: CREATE TABLE / CREATE [UNIQUE] INDEX /
CREATE TRIGGER / DROP TABLE / DROP INDEX / DROP TRIGGER / INSERT /
UPDATE / DELETE / SELECT (WHERE, JOIN, GROUP BY, HAVING, ORDER BY,
LIMIT/OFFSET, aggregates) / BEGIN / COMMIT / ROLLBACK / SAVEPOINT.

:func:`parse_expression` parses a standalone boolean/scalar expression
and is how the rule engine and pub/sub filters accept conditions as
text ("expressions as data").
"""

from repro.db.sql.parser import parse_expression, parse_statement

__all__ = ["parse_statement", "parse_expression"]
