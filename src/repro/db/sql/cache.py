"""Shared statement cache with ``?``-parameter binding.

EXP-3 measured that 60–68 % of the client SQL path is lexing+parsing.
This module removes that cost for repeated statements, the way a
server-side shared cursor cache does: statement text is normalized
(whitespace/keyword case outside string literals), parsed once, and the
resulting AST template is cached in a bounded LRU keyed by
``(normalized text, schema version)``.  DDL bumps the schema version, so
plans built against an old catalog can never be served again.

Templates may contain :class:`~repro.db.expr.Parameter` placeholders.
Binding substitutes literals into a *copy* of the parameterized
expressions (param-free subtrees are shared by identity), so the planner
still sees constants for index selection and per-node compiled-closure
memos keep paying off across executions.

Parameters are accepted in DML expression positions only; they are not
supported inside ``IN (SELECT ...)`` / ``EXISTS`` subqueries or DDL.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Sequence

from repro.db.expr import (
    Expression,
    contains_parameters,
    substitute_parameters,
)
from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.errors import DatabaseError

DEFAULT_CAPACITY = 256

_TRANSACTION_STATEMENTS = (
    ast.BeginStatement,
    ast.CommitStatement,
    ast.RollbackStatement,
    ast.SavepointStatement,
)


def normalize_sql(text: str) -> str:
    """Normalize statement text for cache keying.

    Collapses runs of whitespace to single spaces, lowercases everything
    *outside* string literals, strips ``--`` comments and a trailing
    ``;`` — so ``SELECT * FROM t`` and ``select  *\\nfrom T ;`` share one
    cache entry while ``'It''s  HERE'`` survives byte-for-byte.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    pending_space = False
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            pending_space = True
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        if ch == "'":
            start = i
            i += 1
            while i < n:
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
            else:
                i = n
            out.append(text[start:i])
            continue
        out.append(ch.lower())
        i += 1
    normalized = "".join(out)
    while normalized.endswith(";"):
        normalized = normalized[:-1].rstrip()
    return normalized


class CachedStatement:
    """A parsed statement template plus its ``?`` arity."""

    __slots__ = ("statement", "parameter_count")

    def __init__(self, statement: ast.Statement) -> None:
        self.statement = statement
        self.parameter_count = getattr(statement, "parameter_count", 0)

    def bind(self, params: Sequence[Any] | None) -> ast.Statement:
        """Return an executable statement with parameters substituted.

        With zero parameters the shared template itself is returned —
        execution never mutates statements, so this is safe and keeps
        the fast path allocation-free.
        """
        values = tuple(params) if params is not None else ()
        if len(values) != self.parameter_count:
            raise DatabaseError(
                f"statement expects {self.parameter_count} parameter(s), "
                f"got {len(values)}"
            )
        if self.parameter_count == 0:
            return self.statement
        return _bind_statement(self.statement, values)


def _bind_expr(
    expression: Expression | None, params: tuple[Any, ...]
) -> Expression | None:
    if expression is None:
        return None
    return substitute_parameters(expression, params)


def _bind_select(select: ast.Select, params: tuple[Any, ...]) -> ast.Select:
    if not _select_has_params(select):
        return select
    return ast.Select(
        items=[
            ast.SelectItem(
                expression=(
                    _bind_expr(item.expression, params)
                    if item.expression is not None
                    else None
                ),
                alias=item.alias,
                is_star=item.is_star,
            )
            for item in select.items
        ],
        table=select.table,
        alias=select.alias,
        joins=[
            ast.JoinClause(
                table=join.table,
                alias=join.alias,
                on=_bind_expr(join.on, params),
                kind=join.kind,
            )
            for join in select.joins
        ],
        where=_bind_expr(select.where, params),
        group_by=[_bind_expr(expr, params) for expr in select.group_by],
        having=_bind_expr(select.having, params),
        order_by=[
            ast.OrderItem(
                expression=_bind_expr(item.expression, params),
                descending=item.descending,
            )
            for item in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def _select_has_params(select: ast.Select) -> bool:
    expressions: list[Expression] = []
    for item in select.items:
        if item.expression is not None:
            expressions.append(item.expression)
    for join in select.joins:
        if join.on is not None:
            expressions.append(join.on)
    if select.where is not None:
        expressions.append(select.where)
    expressions.extend(select.group_by)
    if select.having is not None:
        expressions.append(select.having)
    for item in select.order_by:
        expressions.append(item.expression)
    return any(contains_parameters(expression) for expression in expressions)


def _bind_statement(
    statement: ast.Statement, params: tuple[Any, ...]
) -> ast.Statement:
    if isinstance(statement, ast.Insert):
        bound = ast.Insert(
            table=statement.table,
            columns=statement.columns,
            rows=[
                [_bind_expr(expr, params) for expr in row]
                for row in statement.rows
            ],
            select=(
                _bind_select(statement.select, params)
                if statement.select is not None
                else None
            ),
        )
    elif isinstance(statement, ast.Update):
        bound = ast.Update(
            table=statement.table,
            assignments=[
                (column, _bind_expr(expr, params))
                for column, expr in statement.assignments
            ],
            where=_bind_expr(statement.where, params),
        )
    elif isinstance(statement, ast.Delete):
        bound = ast.Delete(
            table=statement.table, where=_bind_expr(statement.where, params)
        )
    elif isinstance(statement, ast.Select):
        bound = _bind_select(statement, params)
    elif isinstance(statement, ast.Explain):
        bound = ast.Explain(_bind_statement(statement.statement, params))
    else:
        raise DatabaseError(
            "parameters are only supported in "
            "SELECT/INSERT/UPDATE/DELETE statements"
        )
    bound.parameter_count = 0
    return bound


class StatementCache:
    """Bounded LRU of parsed statement templates.

    Keyed by ``(normalized SQL, schema_version)``: the caller passes the
    database's current schema version, so entries parsed before a DDL
    simply stop being reachable (and age out via LRU or are purged
    eagerly by :meth:`drop_stale`).  Thread-safe; parsing happens
    outside the lock.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("statement cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, int], CachedStatement] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        probes = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / probes if probes else 0.0

    def lookup(
        self,
        sql: str,
        schema_version: int,
        *,
        normalized: str | None = None,
    ) -> CachedStatement:
        """Return the cached template for ``sql``, parsing on miss.

        ``normalized`` lets prepared statements skip re-normalizing the
        same text on every execution.
        """
        key = (normalized if normalized is not None else normalize_sql(sql),
               schema_version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                return entry
            self.stats["misses"] += 1
        statement = parse_statement(sql)
        entry = CachedStatement(statement)
        if not isinstance(statement, _TRANSACTION_STATEMENTS):
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats["evictions"] += 1
        return entry

    def drop_stale(self, current_version: int) -> int:
        """Eagerly purge entries keyed under any other schema version."""
        with self._lock:
            stale = [
                key for key in self._entries if key[1] != current_version
            ]
            for key in stale:
                del self._entries[key]
            self.stats["invalidations"] += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self.stats["invalidations"] += len(self._entries)
            self._entries.clear()


class PreparedStatement:
    """A client-side handle for repeated execution of one statement.

    Normalization happens once at prepare time; each execution is a pure
    cache probe plus parameter binding.  The handle survives DDL: a
    schema bump just makes the next execution re-parse under the new
    version.
    """

    __slots__ = ("_database", "sql", "_normalized", "parameter_count")

    def __init__(self, database: Any, sql: str) -> None:
        self._database = database
        self.sql = sql
        self._normalized = normalize_sql(sql)
        entry = database.statement_cache.lookup(
            sql, database.schema_version, normalized=self._normalized
        )
        self.parameter_count = entry.parameter_count

    def execute(self, params: Sequence[Any] | None = None) -> Any:
        return self._database.execute(
            self.sql, params, _normalized=self._normalized
        )

    def query(self, params: Sequence[Any] | None = None) -> list[dict[str, Any]]:
        return self.execute(params).rows
