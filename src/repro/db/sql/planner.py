"""Access-path planning for single-table row selection.

Given a table and a WHERE expression, the planner picks, in order of
preference:

1. **Index point lookup** — an equality conjunct ``col = const`` whose
   column has any index.
2. **Index range scan** — a range conjunct (``<``, ``<=``, ``>``,
   ``>=``, ``BETWEEN``) whose column has an ordered index; adjacent
   range conjuncts on the same column are merged into one interval.
3. **Full scan** — everything else.

Whatever path is chosen, the full WHERE expression is re-applied as a
residual filter, so planning is purely an optimization and can never
change results — the property the planner's hypothesis test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.db.expr import Expression, compile_predicate, conjuncts
from repro.db.index import OrderedIndex
from repro.db.storage import HeapTable


@dataclass
class AccessPath:
    """A chosen way to produce candidate (rowid, row) pairs."""

    kind: str  # "scan" | "index_eq" | "index_range"
    table: HeapTable
    where: Expression | None
    index_name: str | None = None
    column: str | None = None
    key: Any = None
    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def explain(self) -> str:
        """Human-readable plan description (asserted on in tests)."""
        if self.kind == "scan":
            return f"SCAN {self.table.name}"
        if self.kind == "index_eq":
            return (
                f"INDEX LOOKUP {self.table.name}.{self.column} = {self.key!r} "
                f"USING {self.index_name}"
            )
        low_bracket = "[" if self.low_inclusive else "("
        high_bracket = "]" if self.high_inclusive else ")"
        return (
            f"INDEX RANGE {self.table.name}.{self.column} "
            f"{low_bracket}{self.low!r}, {self.high!r}{high_bracket} "
            f"USING {self.index_name}"
        )

    def rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield candidate rows, applying the residual WHERE filter.

        The residual predicate is compiled once per statement execution
        (and memoized on the expression node, so cached statement
        templates compile once *ever*).
        """
        if self.where is None:
            yield from self._candidates()
            return
        predicate = compile_predicate(self.where)
        for rowid, row in self._candidates():
            if predicate(row):
                yield rowid, row

    def _candidates(self) -> Iterator[tuple[int, dict[str, Any]]]:
        if self.kind == "scan":
            # No-copy scan: every consumer downstream (SELECT qualify,
            # UPDATE/DELETE targeting) treats rows as read-only, and
            # stored rows are never mutated in place.
            yield from self.table.scan_internal()
            return
        if self.kind == "index_eq":
            index = self.table.indexes[self.index_name]
            for rowid in sorted(index.lookup(self.key)):
                row = self.table.get(rowid)
                if row is not None:
                    yield rowid, row
            return
        index = self.table.indexes[self.index_name]
        assert isinstance(index, OrderedIndex)
        for _key, rowid in index.range_scan(
            self.low,
            self.high,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
        ):
            row = self.table.get(rowid)
            if row is not None:
                yield rowid, row


def plan_access(table: HeapTable, where: Expression | None) -> AccessPath:
    """Choose the access path for ``table`` under ``where``."""
    if where is None:
        return AccessPath(kind="scan", table=table, where=None)

    parts = conjuncts(where)

    # 1. Equality with any index on the column.
    for part in parts:
        equality = part.as_equality()
        if equality is None:
            continue
        column, key = equality
        index = table.index_on(column)
        if index is not None:
            return AccessPath(
                kind="index_eq",
                table=table,
                where=where,
                index_name=index.name,
                column=column,
                key=key,
            )

    # 2. Range over an ordered index; merge conjuncts on one column.
    ranges: dict[str, list[tuple[Any, Any, bool, bool]]] = {}
    for part in parts:
        bounds = part.as_range()
        if bounds is None:
            continue
        column, low, high, low_inclusive, high_inclusive = bounds
        ranges.setdefault(column, []).append(
            (low, high, low_inclusive, high_inclusive)
        )
    for column, bound_list in ranges.items():
        index = table.index_on(column, require_range=True)
        if index is None:
            continue
        low: Any = None
        high: Any = None
        low_inclusive = True
        high_inclusive = True
        for candidate_low, candidate_high, cli, chi in bound_list:
            if candidate_low is not None and (
                low is None or candidate_low > low
            ):
                low, low_inclusive = candidate_low, cli
            elif candidate_low is not None and candidate_low == low:
                low_inclusive = low_inclusive and cli
            if candidate_high is not None and (
                high is None or candidate_high < high
            ):
                high, high_inclusive = candidate_high, chi
            elif candidate_high is not None and candidate_high == high:
                high_inclusive = high_inclusive and chi
        return AccessPath(
            kind="index_range",
            table=table,
            where=where,
            index_name=index.name,
            column=column,
            low=low,
            high=high,
            low_inclusive=low_inclusive,
            high_inclusive=high_inclusive,
        )

    return AccessPath(kind="scan", table=table, where=where)
