"""Hand-written SQL tokenizer.

Produces a flat token list the recursive-descent parser walks.  Keyword
recognition is case-insensitive; identifiers are normalized later (by
schema validation), strings use single quotes with ``''`` escaping,
and ``--`` starts a line comment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "ASC", "DESC", "AS", "DISTINCT", "JOIN", "INNER", "LEFT",
        "OUTER", "ON", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "TRIGGER", "PRIMARY",
        "KEY", "NOT", "NULL", "DEFAULT", "CHECK", "AND", "OR", "IN",
        "BETWEEN", "LIKE", "IS", "TRUE", "FALSE", "CASE", "WHEN", "THEN",
        "ELSE", "END", "BEFORE", "AFTER", "OF", "FOR", "EACH", "ROW",
        "STATEMENT", "EXECUTE", "BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT",
        "TO", "USING", "HASH", "ORDERED", "IF", "EXISTS", "COUNT", "STAR",
        "EXPLAIN",
    }
)

_OPERATORS = (
    "<>", "<=", ">=", "!=", "||",
    "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ".", ";", "?",
)


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` with the
    offending position on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise SqlSyntaxError("unterminated string literal", start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token("STRING", "".join(parts), start))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            saw_dot = False
            saw_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not saw_dot and not saw_exp:
                    saw_dot = True
                    i += 1
                elif c in "eE" and not saw_exp and i > start:
                    saw_exp = True
                    i += 1
                    if i < n and text[i] in "+-":
                        i += 1
                else:
                    break
            tokens.append(Token("NUMBER", text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                # Normalize <> to !=.
                value = "!=" if op == "<>" else op
                tokens.append(Token("OP", value, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens
