"""Statement AST produced by the parser and consumed by the executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.expr import Expression


class Statement:
    """Base class for parsed SQL statements.

    ``parameter_count`` is the number of ``?`` placeholders the parser
    saw (set by :func:`repro.db.sql.parser.parse_statement`); cached
    statement templates use it to validate bind arguments.
    """

    parameter_count = 0


@dataclass
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False


@dataclass
class CreateTable(Statement):
    table: str
    columns: list[ColumnDef]
    checks: list[Expression] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    column: str
    unique: bool = False
    kind: str = "ordered"  # "ordered" | "hash"


@dataclass
class DropIndex(Statement):
    name: str
    table: str


@dataclass
class CreateTrigger(Statement):
    """``CREATE TRIGGER name BEFORE|AFTER INSERT|UPDATE|DELETE ON table
    [FOR EACH ROW|STATEMENT] [WHEN (expr)] EXECUTE callback_name``

    The callback name is resolved against functions registered on the
    database with :meth:`Database.register_trigger_function`.
    """

    name: str
    table: str
    timing: str  # "before" | "after"
    event: str  # "insert" | "update" | "delete"
    callback: str
    when: Expression | None = None
    for_each_row: bool = True


@dataclass
class DropTrigger(Statement):
    name: str


@dataclass
class Insert(Statement):
    table: str
    columns: list[str] | None  # None means positional (all columns)
    rows: list[list[Expression]] = field(default_factory=list)
    select: "Select | None" = None  # INSERT INTO ... SELECT form


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Expression | None = None


@dataclass
class Delete(Statement):
    table: str
    where: Expression | None = None


@dataclass
class AggregateCall(Expression):
    """Aggregate in a SELECT/HAVING: COUNT/SUM/AVG/MIN/MAX/STDDEV.

    Not directly evaluable against a row — the executor replaces it
    with the computed group value.  ``argument`` is None for COUNT(*).
    """

    name: str = ""
    argument: Expression | None = None
    distinct: bool = False

    def __repr__(self) -> str:
        inner = "*" if self.argument is None else repr(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"

    def evaluate(self, row: dict[str, Any]) -> Any:
        # The executor substitutes aggregate results before evaluation;
        # reaching this means an aggregate appeared in a bad context.
        from repro.errors import ExpressionError

        raise ExpressionError(
            f"aggregate {self.name}() not allowed in this context"
        )

    def children(self):
        if self.argument is not None:
            yield self.argument


AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max", "stddev"})


@dataclass
class SelectItem:
    expression: Expression
    alias: str | None = None
    is_star: bool = False


@dataclass
class InSelect(Expression):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated subqueries only.

    The executor materializes the subquery once per statement and
    rewrites this node into a plain :class:`repro.db.expr.InList`, so
    it is never evaluated directly.
    """

    operand: Expression = None
    subquery: "Select" = None
    negated: bool = False

    def evaluate(self, row):
        from repro.errors import ExpressionError

        raise ExpressionError(
            "IN (SELECT ...) must be resolved by the executor"
        )

    def children(self):
        yield self.operand

    def __repr__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand!r} {keyword} (SELECT ...))"


@dataclass
class ExistsSelect(Expression):
    """``[NOT] EXISTS (SELECT ...)`` — uncorrelated subqueries only."""

    subquery: "Select" = None
    negated: bool = False

    def evaluate(self, row):
        from repro.errors import ExpressionError

        raise ExpressionError(
            "EXISTS (SELECT ...) must be resolved by the executor"
        )

    def __repr__(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} (SELECT ...)"


@dataclass
class JoinClause:
    table: str
    alias: str | None
    on: Expression
    kind: str = "inner"  # "inner" | "left"


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class Select(Statement):
    items: list[SelectItem]
    table: str | None = None
    alias: str | None = None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass
class Explain(Statement):
    """EXPLAIN <select|update|delete>: report the chosen access path."""

    statement: Statement


@dataclass
class BeginStatement(Statement):
    pass


@dataclass
class CommitStatement(Statement):
    pass


@dataclass
class RollbackStatement(Statement):
    savepoint: str | None = None


@dataclass
class SavepointStatement(Statement):
    name: str
