"""Database triggers — the synchronous event-capture point (§2.2.a.i).

Triggers fire inside the mutating transaction.  BEFORE-row triggers may
rewrite the incoming row or veto the operation; AFTER-row triggers see
the final row images and are where trigger-based event capture hooks
in.  Statement-level triggers fire once per statement with the count of
affected rows.

Because trigger actions run in the foreground transaction, their cost
is paid by the writer — the trade quantified against journal mining in
EXP-1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.db.expr import Expression, compile_predicate
from repro.errors import TriggerError


class TriggerTiming(Enum):
    BEFORE = "before"
    AFTER = "after"


class TriggerEvent(Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass
class TriggerContext:
    """What a trigger action sees when it fires.

    ``old_row`` is None for INSERT, ``new_row`` is None for DELETE.
    For BEFORE-row triggers on INSERT/UPDATE, mutating ``new_row`` in
    place (or returning a dict from the action) changes what is stored.
    Statement-level contexts carry ``affected_rows`` instead of row
    images.
    """

    table: str
    event: TriggerEvent
    timing: TriggerTiming
    txid: int
    old_row: dict[str, Any] | None = None
    new_row: dict[str, Any] | None = None
    affected_rows: int = 0
    statement_level: bool = False
    # The firing statement's connection.  Trigger actions that perform
    # DML must pass it (``db.insert_row(..., conn=ctx.connection)``) so
    # cascaded work joins the same transaction instead of deadlocking
    # against its own table locks.
    connection: Any = None


TriggerAction = Callable[[TriggerContext], Any]


@dataclass
class Trigger:
    """A registered trigger.

    ``when`` is an optional guard expression evaluated against a row
    context exposing plain column names (NEW image for insert/update,
    OLD image for delete).  The action only runs when the guard passes.
    """

    name: str
    table: str
    timing: TriggerTiming
    event: TriggerEvent
    action: TriggerAction
    when: Expression | None = None
    for_each_row: bool = True
    enabled: bool = True
    sequence: int = field(default_factory=itertools.count(1).__next__)

    def applies(self, context: TriggerContext) -> bool:
        if not self.enabled:
            return False
        if self.for_each_row == context.statement_level:
            return False
        if self.when is not None and not context.statement_level:
            guard_row = (
                context.new_row
                if context.new_row is not None
                else context.old_row
            )
            # Compiled once per WHEN expression (memoized on the node);
            # triggers fire per row, so the guard is a hot path.
            if guard_row is None or not compile_predicate(self.when)(guard_row):
                return False
        return True


class TriggerRegistry:
    """All triggers, indexed by (table, event) for O(1) dispatch."""

    # Recursion guard: trigger actions that perform DML can cascade;
    # beyond this depth we assume an unintended loop.
    MAX_DEPTH = 16

    def __init__(self) -> None:
        self._triggers: dict[str, Trigger] = {}
        self._by_table_event: dict[tuple[str, TriggerEvent], list[Trigger]] = {}
        self._depth = 0

    def __len__(self) -> int:
        return len(self._triggers)

    def create(self, trigger: Trigger) -> Trigger:
        if trigger.name in self._triggers:
            raise TriggerError(f"trigger {trigger.name!r} already exists")
        self._triggers[trigger.name] = trigger
        bucket = self._by_table_event.setdefault(
            (trigger.table, trigger.event), []
        )
        bucket.append(trigger)
        bucket.sort(key=lambda t: t.sequence)
        return trigger

    def drop(self, name: str) -> None:
        trigger = self._triggers.pop(name, None)
        if trigger is None:
            raise TriggerError(f"trigger {name!r} does not exist")
        self._by_table_event[(trigger.table, trigger.event)].remove(trigger)

    def get(self, name: str) -> Trigger:
        try:
            return self._triggers[name]
        except KeyError:
            raise TriggerError(f"trigger {name!r} does not exist") from None

    def names(self) -> list[str]:
        return sorted(self._triggers)

    def has(self, table: str, event: TriggerEvent) -> bool:
        """True when any trigger is registered for (table, event).

        Cheap enough to call on every row write: callers use it to skip
        TriggerContext construction entirely on trigger-free tables,
        which is the common case on hot DML paths.
        """
        return bool(self._by_table_event.get((table, event)))

    def for_table(self, table: str) -> list[Trigger]:
        return sorted(
            (t for t in self._triggers.values() if t.table == table),
            key=lambda t: t.sequence,
        )

    def fire(
        self,
        table: str,
        event: TriggerEvent,
        timing: TriggerTiming,
        context: TriggerContext,
    ) -> dict[str, Any] | None:
        """Run matching triggers; returns the possibly rewritten NEW row
        for BEFORE triggers (None means unchanged)."""
        triggers = self._by_table_event.get((table, event), ())
        if not triggers:
            return None
        if self._depth >= self.MAX_DEPTH:
            raise TriggerError(
                f"trigger cascade exceeded depth {self.MAX_DEPTH} on {table!r}"
            )
        rewritten: dict[str, Any] | None = None
        self._depth += 1
        try:
            for trigger in triggers:
                if trigger.timing is not timing or not trigger.applies(context):
                    continue
                result = trigger.action(context)
                if (
                    timing is TriggerTiming.BEFORE
                    and isinstance(result, dict)
                    and not context.statement_level
                ):
                    rewritten = result
                    context.new_row = result
        finally:
            self._depth -= 1
        return rewritten
