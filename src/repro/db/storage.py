"""Heap table storage with index maintenance.

A :class:`HeapTable` stores rows in insertion order keyed by a
monotonically increasing rowid.  It owns the table's indexes and keeps
them consistent on every mutation; UNIQUE constraints are enforced by
unique indexes that the table auto-creates from its schema.

The storage layer is deliberately ignorant of transactions: the
transaction manager above it serializes access via locks and performs
rollback by applying inverse operations recorded in its undo log.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.db.index import HashIndex, Index, OrderedIndex, build_index
from repro.db.schema import TableSchema
from repro.errors import ConstraintViolation, SchemaError

if TYPE_CHECKING:
    from repro.db.columnar import ColumnStore


class HeapTable:
    """One table's rows plus its secondary indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._rowids = itertools.count(1)
        self._column_store: "ColumnStore | None" = None
        self.indexes: dict[str, Index] = {}
        for column_name in schema.unique_columns():
            self.create_index(
                f"uq_{schema.name}_{column_name}",
                column_name,
                kind="hash",
                unique=True,
            )

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    # -- index management ------------------------------------------------

    def create_index(
        self, name: str, column: str, *, kind: str = "ordered", unique: bool = False
    ) -> Index:
        """Create and backfill an index on ``column``."""
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        column = self.schema.column(column).name
        index = build_index(kind, name, self.name, column, unique)
        for rowid, row in self._rows.items():
            index.insert(row[column], rowid)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise SchemaError(f"index {name!r} does not exist")
        del self.indexes[name]

    def index_on(self, column: str, *, require_range: bool = False) -> Index | None:
        """Find an index covering ``column``, preferring ordered ones
        when a range scan is required."""
        column = column.lower()
        best: Index | None = None
        for index in self.indexes.values():
            if index.column != column:
                continue
            if require_range and not index.supports_range:
                continue
            if best is None or (
                isinstance(index, HashIndex) and not require_range
            ):
                best = index
        return best

    # -- mutations ---------------------------------------------------------

    def insert(self, row: Mapping[str, Any], rowid: int | None = None) -> int:
        """Insert a fully coerced row; returns the assigned rowid.

        ``rowid`` may be forced by recovery replay so that rowids match
        the pre-crash assignment.
        """
        if rowid is None:
            rowid = next(self._rowids)
        else:
            if rowid in self._rows:
                raise ConstraintViolation(
                    "rowid", detail=f"rowid {rowid} already present"
                )
            self._rowids = itertools.count(
                max(rowid + 1, next(self._rowids))
            )
        stored = dict(row)
        self._check_uniqueness(stored, exclude_rowid=None)
        self._rows[rowid] = stored
        for index in self.indexes.values():
            index.insert(stored[index.column], rowid)
        if self._column_store is not None:
            self._column_store.note_insert(rowid, stored)
        return rowid

    def update(self, rowid: int, updates: Mapping[str, Any]) -> dict[str, Any]:
        """Apply coerced column updates to one row; returns the old row."""
        old_row = self._require(rowid)
        new_row = dict(old_row)
        new_row.update(updates)
        self._check_uniqueness(new_row, exclude_rowid=rowid)
        for index in self.indexes.values():
            old_key = old_row[index.column]
            new_key = new_row[index.column]
            if old_key != new_key or type(old_key) is not type(new_key):
                index.delete(old_key, rowid)
                index.insert(new_key, rowid)
        self._rows[rowid] = new_row
        if self._column_store is not None:
            self._column_store.note_mutation()
        return old_row

    def delete(self, rowid: int) -> dict[str, Any]:
        """Remove one row; returns it (for undo logging)."""
        row = self._require(rowid)
        for index in self.indexes.values():
            index.delete(row[index.column], rowid)
        del self._rows[rowid]
        if self._column_store is not None:
            self._column_store.note_mutation()
        return row

    def _require(self, rowid: int) -> dict[str, Any]:
        try:
            return self._rows[rowid]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no row with rowid {rowid}"
            ) from None

    def _check_uniqueness(
        self, row: Mapping[str, Any], exclude_rowid: int | None
    ) -> None:
        """Pre-check unique indexes so failed inserts leave no index
        half-updated (indexes are only touched after this passes)."""
        for index in self.indexes.values():
            if not index.unique:
                continue
            key = row[index.column]
            if key is None:
                continue
            for existing in index.lookup(key):
                if existing != exclude_rowid:
                    raise ConstraintViolation(
                        f"UNIQUE on {self.name}.{index.column}",
                        detail=f"duplicate key {key!r}",
                    )

    # -- reads -------------------------------------------------------------

    def get(self, rowid: int) -> dict[str, Any] | None:
        row = self._rows.get(rowid)
        return dict(row) if row is not None else None

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Full scan in rowid order; yields copies so callers cannot
        corrupt storage by mutating results."""
        for rowid in list(self._rows):
            row = self._rows.get(rowid)
            if row is not None:
                yield rowid, dict(row)

    def scan_internal(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Full scan yielding the *stored* row dicts, without per-row
        copies.

        For trusted read-only consumers only (the SELECT row source,
        ColumnStore builds, checkpoint serialization).  Safe because
        stored rows are never mutated in place — ``update`` replaces
        the dict — but callers must never write to a yielded dict.
        """
        return iter(list(self._rows.items()))

    def lookup_rowids(self, column: str, key: Any) -> list[int]:
        """Point lookup through an index when available, else a scan.

        SQL semantics on both paths: NULL never matches, so a ``None``
        key returns no rows even when an index stores NULL entries.
        """
        if key is None:
            return []
        index = self.index_on(column)
        if index is not None:
            return sorted(index.lookup(key))
        column = self.schema.column(column).name
        return [
            rowid
            for rowid, row in self._rows.items()
            if row[column] == key
        ]

    def column_store(self) -> "ColumnStore":
        """The table's columnar projection, created lazily on first use
        and kept consistent by the mutation hooks above."""
        if self._column_store is None:
            from repro.db.columnar import ColumnStore

            self._column_store = ColumnStore(self)
        return self._column_store

    def snapshot(self) -> dict[int, dict[str, Any]]:
        """Deep-enough copy of all rows, used by checkpointing."""
        return {rowid: dict(row) for rowid, row in self._rows.items()}

    def restore(self, rows: Mapping[int, Mapping[str, Any]]) -> None:
        """Replace all contents from a checkpoint snapshot."""
        self._rows = {rowid: dict(row) for rowid, row in rows.items()}
        self._rowids = itertools.count(max(self._rows, default=0) + 1)
        if self._column_store is not None:
            self._column_store.note_mutation()
        for index in self.indexes.values():
            index.clear()
            for rowid, row in self._rows.items():
                index.insert(row[index.column], rowid)
