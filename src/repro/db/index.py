"""Secondary indexes: hash (point lookup) and ordered (range scan).

Both index types map a single column's value to the set of rowids
holding that value.  Unique indexes additionally enforce at-most-one
rowid per non-NULL key and are how UNIQUE / PRIMARY KEY constraints are
implemented.  NULL keys are never indexed for uniqueness (SQL allows
many NULLs in a UNIQUE column) but are tracked so index-only plans stay
correct.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.errors import ConstraintViolation, SchemaError


def _sort_key(value: Any) -> tuple[Any, ...]:
    """Total-order key: NULL first, then numerics, then by type name.

    Matches :func:`repro.db.types.compare_values` so ordered-index scans
    agree with ORDER BY.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, "", float(value))
    if isinstance(value, (int, float)):
        return (1, "", float(value))
    return (2, type(value).__name__, value)


class Index:
    """Common interface for both index kinds."""

    def __init__(self, name: str, table: str, column: str, unique: bool) -> None:
        self.name = name
        self.table = table
        self.column = column
        self.unique = unique

    def insert(self, key: Any, rowid: int) -> None:
        raise NotImplementedError

    def delete(self, key: Any, rowid: int) -> None:
        raise NotImplementedError

    def lookup(self, key: Any) -> Iterator[int]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    @property
    def supports_range(self) -> bool:
        return False

    def _unique_violation(self, key: Any) -> ConstraintViolation:
        return ConstraintViolation(
            f"UNIQUE on {self.table}.{self.column}", detail=f"duplicate key {key!r}"
        )


class HashIndex(Index):
    """Dictionary-backed index: O(1) point lookups, no range scans."""

    def __init__(self, name: str, table: str, column: str, unique: bool = False) -> None:
        super().__init__(name, table, column, unique)
        self._buckets: dict[Any, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def insert(self, key: Any, rowid: int) -> None:
        key = _hashable(key)
        bucket = self._buckets.setdefault(key, set())
        if self.unique and key is not None and bucket:
            raise self._unique_violation(key)
        bucket.add(rowid)

    def delete(self, key: Any, rowid: int) -> None:
        key = _hashable(key)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Any) -> Iterator[int]:
        return iter(self._buckets.get(_hashable(key), ()))

    def contains_key(self, key: Any) -> bool:
        return _hashable(key) in self._buckets

    def clear(self) -> None:
        self._buckets.clear()


def _hashable(key: Any) -> Any:
    """Normalize a key for hashing: bools fold into ints, ints with
    equal float values fold together (so ``x = 1`` finds ``1.0``)."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, float) and key.is_integer():
        return int(key)
    return key


class OrderedIndex(Index):
    """Sorted-array index supporting point lookups and range scans.

    A B-tree would have better asymptotic insert cost; a sorted array
    with binary search has the same O(log n) search, the same ordered
    iteration, and far simpler invariants — sufficient at this scale and
    easy to verify with property tests.
    """

    def __init__(self, name: str, table: str, column: str, unique: bool = False) -> None:
        super().__init__(name, table, column, unique)
        # Parallel arrays: _keys[i] is the sort key of entry i.
        self._keys: list[tuple[Any, ...]] = []
        self._entries: list[tuple[Any, int]] = []  # (original key, rowid)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def supports_range(self) -> bool:
        return True

    def insert(self, key: Any, rowid: int) -> None:
        sort_key = _sort_key(key)
        position = bisect.bisect_left(self._keys, sort_key)
        if self.unique and key is not None:
            if (
                position < len(self._keys)
                and self._keys[position] == sort_key
            ):
                raise self._unique_violation(key)
        # Keep rowids ordered within equal keys for determinism.
        while (
            position < len(self._keys)
            and self._keys[position] == sort_key
            and self._entries[position][1] < rowid
        ):
            position += 1
        self._keys.insert(position, sort_key)
        self._entries.insert(position, (key, rowid))

    def delete(self, key: Any, rowid: int) -> None:
        sort_key = _sort_key(key)
        position = bisect.bisect_left(self._keys, sort_key)
        while position < len(self._keys) and self._keys[position] == sort_key:
            if self._entries[position][1] == rowid:
                del self._keys[position]
                del self._entries[position]
                return
            position += 1

    def lookup(self, key: Any) -> Iterator[int]:
        sort_key = _sort_key(key)
        position = bisect.bisect_left(self._keys, sort_key)
        while position < len(self._keys) and self._keys[position] == sort_key:
            yield self._entries[position][1]
            position += 1

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        """Yield ``(key, rowid)`` for keys within the bounds, in order.

        ``None`` bounds mean unbounded; NULL keys are never returned by
        a range scan (SQL comparisons with NULL are UNKNOWN).
        """
        if low is not None:
            low_key = _sort_key(low)
            start = (
                bisect.bisect_left(self._keys, low_key)
                if low_inclusive
                else bisect.bisect_right(self._keys, low_key)
            )
        else:
            # Skip NULL entries, which sort first.
            start = bisect.bisect_right(self._keys, _sort_key(None))
        if high is not None:
            high_key = _sort_key(high)
            stop = (
                bisect.bisect_right(self._keys, high_key)
                if high_inclusive
                else bisect.bisect_left(self._keys, high_key)
            )
        else:
            stop = len(self._keys)
        for position in range(start, stop):
            key, rowid = self._entries[position]
            if key is None:
                continue
            yield key, rowid

    def min_key(self) -> Any:
        """Smallest non-NULL key, or None when the index is empty."""
        for key, _rowid in self.range_scan():
            return key
        return None

    def max_key(self) -> Any:
        """Largest key, or None when the index holds only NULLs/nothing."""
        if not self._entries:
            return None
        key = self._entries[-1][0]
        return key

    def clear(self) -> None:
        self._keys.clear()
        self._entries.clear()


def build_index(
    kind: str, name: str, table: str, column: str, unique: bool = False
) -> Index:
    """Factory used by CREATE INDEX: kind is ``"hash"`` or ``"ordered"``."""
    if kind == "hash":
        return HashIndex(name, table, column, unique)
    if kind in ("ordered", "btree"):
        return OrderedIndex(name, table, column, unique)
    raise SchemaError(f"unknown index kind {kind!r}")
