"""Crash recovery: WAL analysis and redo, plus schema serialization.

Recovery is redo-only: the storage layer applies mutations only after
they are journaled, and rollback happens logically through undo entries
*before* commit, so an uncommitted transaction's effects never need to
be undone at recovery time — we simply do not redo them.

The protocol (classic ARIES-lite, simplified by consistent checkpoints):

1. **Analysis** — scan the durable log, find the last checkpoint and
   the set of committed transaction ids after it.
2. **Redo** — restore the checkpoint snapshot (if any), then reapply,
   in LSN order, every DDL/DML record whose transaction committed.

Aborted and in-flight transactions are skipped entirely, which yields
the two correctness properties EXP-10 checks: *no committed write is
lost* and *no uncommitted write survives*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.db.expr import Expression, expression_from_dict, expression_to_dict
from repro.db.schema import Column, TableSchema
from repro.db.types import type_by_name
from repro.db.wal import (
    DDL_OPS,
    DML_OPS,
    OP_ABORT,
    OP_CHECKPOINT,
    OP_COMMIT,
    LogRecord,
)
from repro.errors import RecoveryError

# --------------------------------------------------------------------------
# Schema (de)serialization — needed to replay CREATE TABLE records
# --------------------------------------------------------------------------


def schema_to_dict(schema: TableSchema) -> dict[str, Any]:
    """JSON-stable form of a table schema (callable defaults excluded:
    they are evaluated at insert time and the WAL stores full row
    images, so recovery never needs to re-run a default)."""
    return {
        "name": schema.name,
        "columns": [
            {
                "name": column.name,
                "type": column.col_type.name,
                "nullable": column.nullable,
                "primary_key": column.primary_key,
                "unique": column.unique,
                "default": None if callable(column.default) else column.default,
            }
            for column in schema.columns
        ],
        "checks": [expression_to_dict(check) for check in schema.checks],
    }


def schema_from_dict(data: Mapping[str, Any]) -> TableSchema:
    """Rebuild a :class:`TableSchema` from :func:`schema_to_dict` output."""
    columns = [
        Column(
            name=column["name"],
            col_type=type_by_name(column["type"]),
            nullable=column["nullable"],
            primary_key=column["primary_key"],
            unique=column["unique"],
            default=column.get("default"),
        )
        for column in data["columns"]
    ]
    checks: list[Expression] = [
        expression_from_dict(check) for check in data.get("checks", [])
    ]
    return TableSchema(data["name"], columns, checks)


# --------------------------------------------------------------------------
# Analysis + redo plan
# --------------------------------------------------------------------------


@dataclass
class RecoveryPlan:
    """Everything the database needs to rebuild state after a crash."""

    checkpoint: LogRecord | None = None
    redo_records: list[LogRecord] = field(default_factory=list)
    committed_txids: set[int] = field(default_factory=set)
    aborted_txids: set[int] = field(default_factory=set)
    inflight_txids: set[int] = field(default_factory=set)
    max_txid: int = 0
    max_lsn: int = 0


def analyze(records: list[LogRecord]) -> RecoveryPlan:
    """Build the redo plan from the durable log prefix."""
    plan = RecoveryPlan()
    checkpoint_index = -1
    for position, record in enumerate(records):
        if record.op == OP_CHECKPOINT:
            plan.checkpoint = record
            checkpoint_index = position
    tail = records[checkpoint_index + 1 :]

    seen: set[int] = set()
    for record in tail:
        plan.max_lsn = max(plan.max_lsn, record.lsn)
        plan.max_txid = max(plan.max_txid, record.txid)
        seen.add(record.txid)
        if record.op == OP_COMMIT:
            plan.committed_txids.add(record.txid)
        elif record.op == OP_ABORT:
            plan.aborted_txids.add(record.txid)
    plan.inflight_txids = seen - plan.committed_txids - plan.aborted_txids

    plan.redo_records = [
        record
        for record in tail
        if (record.op in DML_OPS or record.op in DDL_OPS)
        and record.txid in plan.committed_txids
    ]
    return plan


def verify_redo_record(record: LogRecord) -> None:
    """Sanity-check a redo record before applying it.

    Raised errors carry structured context (``lsn``/``op``/``table``/
    ``rowid``) so harnesses can assert on *which* record was rejected.
    """
    if record.op in DML_OPS:
        if record.table is None or record.rowid is None:
            raise RecoveryError(
                "malformed DML record: missing table/rowid",
                lsn=record.lsn,
                op=record.op,
                table=record.table,
                rowid=record.rowid,
            )
        if record.op != "delete" and record.after is None:
            raise RecoveryError(
                "malformed record: missing row image",
                lsn=record.lsn,
                op=record.op,
                table=record.table,
                rowid=record.rowid,
            )
    elif record.op in DDL_OPS:
        if record.op == "create_table" and "schema" not in record.meta:
            raise RecoveryError(
                "malformed create_table record: missing schema",
                lsn=record.lsn,
                op=record.op,
                table=record.table,
            )
