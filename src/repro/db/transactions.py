"""Transactions: two-phase locking, undo logging, deadlock detection.

The tutorial leans on the database's "transactional support" as an
operational characteristic of both message storage and consumption
(§2.2.b.ii.3, §2.2.d.iii.3).  This module supplies it:

* **Strict two-phase locking** with shared/exclusive locks at row and
  table granularity.  Locks are held to commit/rollback.
* **Undo logging**: every mutation registers an inverse operation;
  rollback replays them newest-first.  Savepoints are positions in the
  undo log.
* **Deadlock detection** on a wait-for graph (networkx); the requester
  that closes a cycle is chosen as the victim and gets
  :class:`DeadlockError`.

Lock waits block on condition variables, so multi-threaded consumers
(queue dequeuers in the benchmarks) coordinate correctly.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Hashable

import networkx as nx

from repro.errors import DeadlockError, LockTimeoutError, TransactionError


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class _LockState:
    """Holders and waiters for one lockable resource."""

    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Shared/exclusive locks keyed by arbitrary hashable resources.

    Resources are ``("table", name)`` or ``("row", table, rowid)``
    tuples; the manager itself does not interpret them.
    """

    def __init__(self, timeout: float = 5.0) -> None:
        self._locks: dict[Hashable, _LockState] = {}
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._timeout = timeout

    def acquire(self, txid: int, resource: Hashable, mode: LockMode) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txid``.

        Raises :class:`DeadlockError` if waiting would close a cycle in
        the wait-for graph, :class:`LockTimeoutError` on timeout.
        """
        with self._condition:
            state = self._locks.setdefault(resource, _LockState())
            # Re-acquisition fast path: batched DML re-requests the same
            # table lock once per row; an EXCLUSIVE holder (or a SHARED
            # holder asking for SHARED again) can skip the grant scan.
            held = state.holders.get(txid)
            if held is LockMode.EXCLUSIVE or held is mode:
                return
            if self._grantable(state, txid, mode):
                self._grant(state, txid, mode)
                return
            entry = (txid, mode)
            state.waiters.append(entry)
            try:
                if self._would_deadlock(txid):
                    raise DeadlockError(
                        f"transaction {txid} would deadlock waiting for {resource!r}"
                    )
                deadline = (
                    threading.TIMEOUT_MAX
                    if self._timeout is None
                    else self._timeout
                )
                granted = self._condition.wait_for(
                    lambda: self._grantable(state, txid, mode), timeout=deadline
                )
                if not granted:
                    raise LockTimeoutError(
                        f"transaction {txid} timed out waiting for {resource!r}"
                    )
                self._grant(state, txid, mode)
            finally:
                if entry in state.waiters:
                    state.waiters.remove(entry)

    def _grantable(self, state: _LockState, txid: int, mode: LockMode) -> bool:
        others = {
            holder: held
            for holder, held in state.holders.items()
            if holder != txid
        }
        if not others:
            return True
        return all(_compatible(held, mode) for held in others.values())

    def _grant(self, state: _LockState, txid: int, mode: LockMode) -> None:
        current = state.holders.get(txid)
        if current is LockMode.EXCLUSIVE:
            return  # X subsumes everything.
        state.holders[txid] = mode if current is None or mode is LockMode.EXCLUSIVE else current

    def _would_deadlock(self, requester: int) -> bool:
        """True when the wait-for graph (including this new wait) has a
        cycle through ``requester``."""
        graph = nx.DiGraph()
        for state in self._locks.values():
            for waiter, wanted in state.waiters:
                for holder, held in state.holders.items():
                    if holder != waiter and not _compatible(held, wanted):
                        graph.add_edge(waiter, holder)
        if requester not in graph:
            return False
        try:
            nx.find_cycle(graph, source=requester)
            return True
        except nx.NetworkXNoCycle:
            return False

    def release_all(self, txid: int) -> None:
        """Release every lock held by ``txid`` and wake waiters."""
        with self._condition:
            empty: list[Hashable] = []
            for resource, state in self._locks.items():
                state.holders.pop(txid, None)
                if not state.holders and not state.waiters:
                    empty.append(resource)
            for resource in empty:
                del self._locks[resource]
            self._condition.notify_all()

    def held_by(self, txid: int) -> list[Hashable]:
        with self._mutex:
            return [
                resource
                for resource, state in self._locks.items()
                if txid in state.holders
            ]


class TransactionState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


UndoAction = Callable[[], None]


class Transaction:
    """One unit of work: undo log, savepoints, and lifecycle state.

    Instances are created by the :class:`TransactionManager`; user code
    receives them from ``Database.begin()`` or the connection context
    manager.
    """

    def __init__(self, txid: int, manager: "TransactionManager") -> None:
        self.txid = txid
        self._manager = manager
        self.state = TransactionState.ACTIVE
        self._undo: list[UndoAction] = []
        self._savepoints: dict[str, int] = {}
        # Arbitrary per-transaction attachments (e.g. trigger depth).
        self.attributes: dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"Transaction(txid={self.txid}, state={self.state.value})"

    @property
    def is_active(self) -> bool:
        return self.state is TransactionState.ACTIVE

    def require_active(self) -> None:
        if not self.is_active:
            raise TransactionError(
                f"transaction {self.txid} is {self.state.value}, not active"
            )

    def record_undo(self, action: UndoAction) -> None:
        """Register the inverse of a mutation just performed."""
        self.require_active()
        self._undo.append(action)

    def savepoint(self, name: str) -> None:
        """Mark the current undo position under ``name``."""
        self.require_active()
        self._savepoints[name] = len(self._undo)

    def rollback_to_savepoint(self, name: str) -> None:
        """Undo work performed after the savepoint; the savepoint remains."""
        self.require_active()
        if name not in self._savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        position = self._savepoints[name]
        while len(self._undo) > position:
            self._undo.pop()()
        # Invalidate savepoints created after this one.
        self._savepoints = {
            sp_name: sp_position
            for sp_name, sp_position in self._savepoints.items()
            if sp_position <= position
        }

    # The manager drives these; user code goes through Database/Connection.

    def _apply_undo(self) -> None:
        while self._undo:
            self._undo.pop()()

    def _finish(self, state: TransactionState) -> None:
        self.state = state
        self._undo.clear()
        self._savepoints.clear()


class TransactionManager:
    """Creates transactions and drives commit/rollback.

    Commit and rollback hooks are injected by the database facade so
    this module stays free of WAL and trigger dependencies.
    """

    def __init__(self, lock_manager: LockManager | None = None) -> None:
        self.locks = lock_manager or LockManager()
        self._txids = itertools.count(1)
        self._active: dict[int, Transaction] = {}
        self._mutex = threading.Lock()
        # on_commit/on_abort run while the transaction still holds its
        # locks (journal commit record); after_commit/after_abort run
        # once locks are released (safe to start new transactions, e.g.
        # notification listeners re-querying state).
        self.on_commit: Callable[[Transaction], None] | None = None
        self.on_abort: Callable[[Transaction], None] | None = None
        self.after_commit: Callable[[Transaction], None] | None = None
        self.after_abort: Callable[[Transaction], None] | None = None

    def begin(self) -> Transaction:
        transaction = Transaction(next(self._txids), self)
        with self._mutex:
            self._active[transaction.txid] = transaction
        return transaction

    def set_next_txid(self, txid: int) -> None:
        """Fast-forward the txid counter (used after recovery so new
        transactions never reuse a journaled txid)."""
        self._txids = itertools.count(txid)

    @property
    def active_count(self) -> int:
        with self._mutex:
            return len(self._active)

    def commit(self, transaction: Transaction) -> None:
        transaction.require_active()
        if self.on_commit is not None:
            self.on_commit(transaction)
        transaction._finish(TransactionState.COMMITTED)
        self._release(transaction)
        if self.after_commit is not None:
            self.after_commit(transaction)

    def rollback(self, transaction: Transaction) -> None:
        if transaction.state is TransactionState.ABORTED:
            return  # Idempotent.
        transaction.require_active()
        transaction._apply_undo()
        if self.on_abort is not None:
            self.on_abort(transaction)
        transaction._finish(TransactionState.ABORTED)
        self._release(transaction)
        if self.after_abort is not None:
            self.after_abort(transaction)

    def _release(self, transaction: Transaction) -> None:
        self.locks.release_all(transaction.txid)
        with self._mutex:
            self._active.pop(transaction.txid, None)
