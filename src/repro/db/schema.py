"""Table schemas: columns, constraints, row validation.

A :class:`TableSchema` owns column definitions and applies all
row-level constraints except UNIQUE/PRIMARY KEY uniqueness, which needs
table state and therefore lives in the storage layer (it is *declared*
here and *enforced* there via unique indexes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.db.types import ColumnType
from repro.errors import ConstraintViolation, SchemaError

if TYPE_CHECKING:
    from repro.db.expr import Expression

_VALID_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def validate_identifier(name: str, kind: str = "identifier") -> str:
    """Validate and normalize (lowercase) a table/column/index name."""
    if not name:
        raise SchemaError(f"{kind} name must be non-empty")
    lowered = name.lower()
    if lowered[0].isdigit():
        raise SchemaError(f"{kind} name {name!r} must not start with a digit")
    if not set(lowered) <= _VALID_NAME_CHARS:
        raise SchemaError(f"{kind} name {name!r} contains invalid characters")
    return lowered


@dataclass
class Column:
    """A single column definition.

    ``default`` may be a constant or a zero-argument callable (used for
    e.g. auto-timestamps); it is applied on INSERT when the column is
    absent from the supplied row.
    """

    name: str
    col_type: ColumnType
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        self.name = validate_identifier(self.name, "column")
        if self.primary_key:
            # A primary key implies NOT NULL UNIQUE.
            self.nullable = False
            self.unique = True

    def default_value(self) -> Any:
        if callable(self.default):
            return self.default()
        return self.default


class TableSchema:
    """Schema of one table: ordered columns plus CHECK constraints."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        checks: list["Expression"] | None = None,
    ) -> None:
        self.name = validate_identifier(name, "table")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(column.name)
        self.columns = list(columns)
        self.checks = list(checks or [])
        self._by_name: dict[str, Column] = {c.name: c for c in self.columns}
        pk = [c.name for c in self.columns if c.primary_key]
        if len(pk) > 1:
            raise SchemaError(
                f"table {self.name!r} declares multiple primary keys: {pk}"
            )
        self.primary_key: str | None = pk[0] if pk else None
        self._compiled_checks: list[tuple["Expression", Any]] | None = None

    @property
    def compiled_checks(self) -> list[tuple["Expression", Any]]:
        """``(check, compiled evaluator)`` pairs, compiled lazily once.

        CHECK constraints run on every insert/update, so they share one
        closure per expression instead of re-walking the AST per row.
        The import is deferred because :mod:`repro.db.expr` must not be
        a hard dependency of schema validation.
        """
        if self._compiled_checks is None or len(self._compiled_checks) != len(
            self.checks
        ):
            from repro.db.expr import compile_expression

            self._compiled_checks = [
                (check, compile_expression(check)) for check in self.checks
            ]
        return self._compiled_checks

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.col_type}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def coerce_row(
        self,
        values: Mapping[str, Any],
        *,
        apply_defaults: bool = True,
        check_evaluator: Callable[["Expression", Mapping[str, Any]], Any]
        | None = None,
    ) -> dict[str, Any]:
        """Validate and coerce an input mapping into a complete row dict.

        * Unknown keys raise :class:`SchemaError`.
        * Missing columns get their default (on insert) or raise when
          NOT NULL without a default.
        * Values are coerced to the column type.
        * CHECK constraints are evaluated via ``check_evaluator`` (the
          expression evaluator is injected to avoid a circular import).
        """
        normalized = {key.lower(): value for key, value in values.items()}
        for key in normalized:
            if key not in self._by_name:
                raise SchemaError(
                    f"table {self.name!r} has no column {key!r}"
                )
        row: dict[str, Any] = {}
        for column in self.columns:
            if column.name in normalized:
                value = column.col_type.coerce(normalized[column.name])
            elif apply_defaults:
                value = column.col_type.coerce(column.default_value())
            else:
                value = None
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"NOT NULL on {self.name}.{column.name}"
                )
            row[column.name] = value
        if check_evaluator is not None:
            for check in self.checks:
                result = check_evaluator(check, row)
                # SQL semantics: CHECK passes on TRUE or NULL (unknown).
                if result is False:
                    raise ConstraintViolation(
                        f"CHECK on {self.name}", detail=str(check)
                    )
        return row

    def coerce_update(
        self, updates: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Coerce a partial row used by UPDATE (no defaults applied)."""
        coerced: dict[str, Any] = {}
        for key, value in updates.items():
            column = self.column(key)
            coerced_value = column.col_type.coerce(value)
            if coerced_value is None and not column.nullable:
                raise ConstraintViolation(
                    f"NOT NULL on {self.name}.{column.name}"
                )
            coerced[column.name] = coerced_value
        return coerced

    def unique_columns(self) -> list[str]:
        """Columns requiring a uniqueness guarantee (PK included)."""
        return [column.name for column in self.columns if column.unique]
