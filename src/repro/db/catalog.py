"""System catalog: the registry of tables, indexes, and triggers.

The catalog is also queryable as data — ``describe()`` returns rows the
same shape an information-schema view would, which the examples use to
show "the database knows its own event configuration".
"""

from __future__ import annotations

from typing import Any

from repro.db.storage import HeapTable
from repro.db.schema import TableSchema
from repro.db.triggers import TriggerRegistry
from repro.errors import SchemaError


class Catalog:
    """Owns every schema object in one database."""

    def __init__(self) -> None:
        self._tables: dict[str, HeapTable] = {}
        self.triggers = TriggerRegistry()

    # -- tables ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> HeapTable:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = HeapTable(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> HeapTable:
        name = name.lower()
        table = self._tables.pop(name, None)
        if table is None:
            raise SchemaError(f"table {name!r} does not exist")
        for trigger in self.triggers.for_table(name):
            self.triggers.drop(trigger.name)
        return table

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[HeapTable]:
        return [self._tables[name] for name in sorted(self._tables)]

    # -- introspection -------------------------------------------------------

    def describe(self) -> list[dict[str, Any]]:
        """One row per catalog object, information-schema style."""
        rows: list[dict[str, Any]] = []
        for name in sorted(self._tables):
            table = self._tables[name]
            rows.append(
                {
                    "object_type": "table",
                    "name": name,
                    "detail": ", ".join(
                        f"{c.name} {c.col_type.name}" for c in table.schema.columns
                    ),
                    "row_count": len(table),
                }
            )
            for index_name in sorted(table.indexes):
                index = table.indexes[index_name]
                rows.append(
                    {
                        "object_type": "index",
                        "name": index_name,
                        "detail": f"on {name}({index.column})"
                        + (" unique" if index.unique else ""),
                        "row_count": None,
                    }
                )
        for trigger_name in self.triggers.names():
            trigger = self.triggers.get(trigger_name)
            rows.append(
                {
                    "object_type": "trigger",
                    "name": trigger_name,
                    "detail": (
                        f"{trigger.timing.value} {trigger.event.value} "
                        f"on {trigger.table}"
                    ),
                    "row_count": None,
                }
            )
        return rows
