"""Expression AST and evaluator with SQL three-valued logic.

This module is the single expression engine for the whole platform:
SQL ``WHERE`` clauses, ``CHECK`` constraints, trigger ``WHEN`` clauses,
the rule engine's "expressions as data", continuous-query filters, and
pub/sub content filters all evaluate the same AST.

Evaluation follows SQL semantics: any comparison involving NULL yields
UNKNOWN (Python ``None``), and AND/OR/NOT implement Kleene logic.

The analysis helpers at the bottom (:func:`conjuncts`,
:meth:`Expression.as_equality`, :meth:`Expression.as_range`) are what
the rule-engine predicate index (EXP-4) is built on.
"""

from __future__ import annotations

import math
import operator as _operator
import re
from typing import Any, Callable, Iterator, Mapping

from repro.db.types import compare_values
from repro.errors import ExpressionError


class Expression:
    """Base class for expression AST nodes.

    Subclasses declare ``__slots__`` but the base class does not, so every
    node carries a ``__dict__`` — used for per-node memos (referenced
    columns, compiled closures) without touching each subclass.
    """

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate against a row (mapping of column name to value)."""
        raise NotImplementedError

    def referenced_columns(self) -> frozenset[str]:
        """All column names this expression reads (memoized per node).

        The result is a frozenset: it is cached on the node and shared
        between callers, so it must never be mutated.  Shared sub-trees
        contribute their own memo instead of being re-walked.
        """
        cached = self.__dict__.get("_columns_memo")
        if cached is None:
            result: set[str] = set()
            self._collect_columns(result)
            cached = frozenset(result)
            self._columns_memo = cached
        return cached

    def _collect_columns(self, into: set[str]) -> None:
        cached = self.__dict__.get("_columns_memo")
        if cached is not None:
            into.update(cached)
            return
        for child in self.children():
            child._collect_columns(into)

    def children(self) -> Iterator["Expression"]:
        return iter(())

    # -- analysis hooks used by the predicate index ---------------------

    def as_equality(self) -> tuple[str, Any] | None:
        """Return ``(column, constant)`` when this node is ``col = const``."""
        return None

    def as_range(self) -> tuple[str, Any, Any, bool, bool] | None:
        """Return ``(column, low, high, low_inclusive, high_inclusive)``
        when this node constrains one column to a constant interval.
        ``None`` bounds mean unbounded on that side."""
        return None


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value


class ColumnRef(Expression):
    """A reference to a column, optionally qualified (``t.col``).

    Lookup tries the qualified name first, then the bare name; this lets
    the same node work against single-table rows and join rows whose
    keys are qualified.
    """

    __slots__ = ("name", "qualifier")

    def __init__(self, name: str, qualifier: str | None = None) -> None:
        self.name = name.lower()
        self.qualifier = qualifier.lower() if qualifier else None

    def __repr__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    @property
    def full_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.qualifier:
            qualified = f"{self.qualifier}.{self.name}"
            if qualified in row:
                return row[qualified]
        if self.name in row:
            return row[self.name]
        raise ExpressionError(f"unknown column {self.full_name!r}")

    def _collect_columns(self, into: set[str]) -> None:
        into.add(self.name)


class Parameter(Expression):
    """A ``?`` placeholder, bound to a literal at execution time.

    Parameters exist only inside cached statement templates; binding
    (:func:`substitute_parameters`) rewrites them into :class:`Literal`
    nodes so the planner still sees constants for index selection.
    Evaluating an unbound parameter is an error.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"?{self.index + 1}"

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise ExpressionError(f"unbound parameter ?{self.index + 1}")


def _is_unknown(value: Any) -> bool:
    return value is None


def _truthy(value: Any) -> bool:
    """SQL condition result to Python bool: UNKNOWN/NULL counts as false."""
    return bool(value) and value is not None


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
}

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


class BinaryOp(Expression):
    """Binary operator: arithmetic, comparison, AND/OR, string ``||``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def children(self) -> Iterator[Expression]:
        yield self.left
        yield self.right

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.op == "AND":
            left = self.left.evaluate(row)
            if not _is_unknown(left) and not _truthy(left):
                return False  # FALSE AND anything = FALSE (short circuit)
            right = self.right.evaluate(row)
            if not _is_unknown(right) and not _truthy(right):
                return False
            if _is_unknown(left) or _is_unknown(right):
                return None
            return True
        if self.op == "OR":
            left = self.left.evaluate(row)
            if _truthy(left):
                return True  # TRUE OR anything = TRUE (short circuit)
            right = self.right.evaluate(row)
            if _truthy(right):
                return True
            if _is_unknown(left) or _is_unknown(right):
                return None
            return False

        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.op in _COMPARISONS:
            if _is_unknown(left) or _is_unknown(right):
                return None
            cmp = compare_values(left, right)
            if self.op == "=":
                return cmp == 0
            if self.op == "!=":
                return cmp != 0
            if self.op == "<":
                return cmp < 0
            if self.op == "<=":
                return cmp <= 0
            if self.op == ">":
                return cmp > 0
            return cmp >= 0
        if self.op == "||":
            if _is_unknown(left) or _is_unknown(right):
                return None
            return str(left) + str(right)
        if self.op == "/":
            if _is_unknown(left) or _is_unknown(right):
                return None
            if right == 0:
                raise ExpressionError("division by zero")
            return left / right
        if self.op in _ARITHMETIC:
            if _is_unknown(left) or _is_unknown(right):
                return None
            try:
                return _ARITHMETIC[self.op](left, right)
            except TypeError:
                raise ExpressionError(
                    f"operator {self.op!r} not applicable to "
                    f"{type(left).__name__} and {type(right).__name__}"
                ) from None
        raise ExpressionError(f"unknown operator {self.op!r}")

    def as_equality(self) -> tuple[str, Any] | None:
        if self.op != "=":
            return None
        if isinstance(self.left, ColumnRef) and isinstance(self.right, Literal):
            return (self.left.name, self.right.value)
        if isinstance(self.right, ColumnRef) and isinstance(self.left, Literal):
            return (self.right.name, self.left.value)
        return None

    def as_range(self) -> tuple[str, Any, Any, bool, bool] | None:
        column: str
        value: Any
        op = self.op
        if isinstance(self.left, ColumnRef) and isinstance(self.right, Literal):
            column, value = self.left.name, self.right.value
        elif isinstance(self.right, ColumnRef) and isinstance(self.left, Literal):
            column, value = self.right.name, self.left.value
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            op = flip.get(op, op)
        else:
            return None
        if value is None:
            return None
        if op == "<":
            return (column, None, value, False, False)
        if op == "<=":
            return (column, None, value, False, True)
        if op == ">":
            return (column, value, None, False, False)
        if op == ">=":
            return (column, value, None, True, False)
        if op == "=":
            return (column, value, value, True, True)
        return None


class UnaryOp(Expression):
    """Unary NOT and arithmetic negation."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression) -> None:
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"

    def children(self) -> Iterator[Expression]:
        yield self.operand

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        if self.op == "NOT":
            if _is_unknown(value):
                return None
            return not _truthy(value)
        if self.op == "-":
            if _is_unknown(value):
                return None
            return -value
        raise ExpressionError(f"unknown unary operator {self.op!r}")


class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` — never UNKNOWN."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expression, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def __repr__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand!r} {suffix})"

    def children(self) -> Iterator[Expression]:
        yield self.operand

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null


class InList(Expression):
    """``expr IN (v1, v2, ...)`` with SQL NULL semantics."""

    __slots__ = ("operand", "items", "negated")

    def __init__(
        self, operand: Expression, items: list[Expression], negated: bool = False
    ) -> None:
        self.operand = operand
        self.items = items
        self.negated = negated

    def __repr__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(repr(item) for item in self.items)
        return f"({self.operand!r} {keyword} ({inner}))"

    def children(self) -> Iterator[Expression]:
        yield self.operand
        yield from self.items

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(row)
            if candidate is None:
                saw_null = True
            elif compare_values(value, candidate) == 0:
                return not self.negated
        if saw_null:
            return None
        return self.negated


class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive both ends)."""

    __slots__ = ("operand", "low", "high", "negated")

    def __init__(
        self,
        operand: Expression,
        low: Expression,
        high: Expression,
        negated: bool = False,
    ) -> None:
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def __repr__(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand!r} {keyword} {self.low!r} AND {self.high!r})"

    def children(self) -> Iterator[Expression]:
        yield self.operand
        yield self.low
        yield self.high

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        if value is None or low is None or high is None:
            return None
        inside = compare_values(value, low) >= 0 and compare_values(value, high) <= 0
        return not inside if self.negated else inside

    def as_range(self) -> tuple[str, Any, Any, bool, bool] | None:
        if self.negated:
            return None
        if (
            isinstance(self.operand, ColumnRef)
            and isinstance(self.low, Literal)
            and isinstance(self.high, Literal)
            and self.low.value is not None
            and self.high.value is not None
        ):
            return (self.operand.name, self.low.value, self.high.value, True, True)
        return None


class Like(Expression):
    """``expr LIKE pattern`` with ``%`` and ``_`` wildcards."""

    __slots__ = ("operand", "pattern", "negated", "_regex")

    def __init__(
        self, operand: Expression, pattern: Expression, negated: bool = False
    ) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex: re.Pattern[str] | None = None
        if isinstance(pattern, Literal) and isinstance(pattern.value, str):
            self._regex = _like_to_regex(pattern.value)

    def __repr__(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand!r} {keyword} {self.pattern!r})"

    def children(self) -> Iterator[Expression]:
        yield self.operand
        yield self.pattern

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        regex = self._regex
        if regex is None:
            pattern_value = self.pattern.evaluate(row)
            if pattern_value is None:
                return None
            regex = _like_to_regex(str(pattern_value))
        matched = regex.fullmatch(str(value)) is not None
        return not matched if self.negated else matched


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.DOTALL)


class Case(Expression):
    """Searched CASE: ``CASE WHEN c1 THEN v1 ... ELSE d END``."""

    __slots__ = ("branches", "default")

    def __init__(
        self,
        branches: list[tuple[Expression, Expression]],
        default: Expression | None = None,
    ) -> None:
        if not branches:
            raise ExpressionError("CASE requires at least one WHEN branch")
        self.branches = branches
        self.default = default

    def __repr__(self) -> str:
        parts = [f"WHEN {c!r} THEN {v!r}" for c, v in self.branches]
        if self.default is not None:
            parts.append(f"ELSE {self.default!r}")
        return "CASE " + " ".join(parts) + " END"

    def children(self) -> Iterator[Expression]:
        for condition, value in self.branches:
            yield condition
            yield value
        if self.default is not None:
            yield self.default

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        for condition, value in self.branches:
            if _truthy(condition.evaluate(row)):
                return value.evaluate(row)
        if self.default is not None:
            return self.default.evaluate(row)
        return None


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _null_guard(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapped


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": _null_guard(abs),
    "length": _null_guard(lambda s: len(str(s))),
    "lower": _null_guard(lambda s: str(s).lower()),
    "upper": _null_guard(lambda s: str(s).upper()),
    "round": _null_guard(lambda x, digits=0: round(x, int(digits))),
    "floor": _null_guard(lambda x: math.floor(x)),
    "ceil": _null_guard(lambda x: math.ceil(x)),
    "sqrt": _null_guard(lambda x: math.sqrt(x)),
    "ln": _null_guard(lambda x: math.log(x)),
    "exp": _null_guard(lambda x: math.exp(x)),
    "sign": _null_guard(lambda x: (x > 0) - (x < 0)),
    "min": _null_guard(min),
    "max": _null_guard(max),
    "coalesce": _fn_coalesce,
    "nullif": lambda a, b: None if a == b else a,
    "substr": _null_guard(
        lambda s, start, length=None: str(s)[
            int(start) - 1 : None if length is None else int(start) - 1 + int(length)
        ]
    ),
    "trim": _null_guard(lambda s: str(s).strip()),
    "instr": _null_guard(lambda s, sub: str(s).find(str(sub)) + 1),
}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register a scalar function usable from every expression context."""
    _FUNCTIONS[name.lower()] = fn


class FunctionCall(Expression):
    """Scalar function call, e.g. ``abs(x - y)``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: list[Expression]) -> None:
        self.name = name.lower()
        self.args = args
        if self.name not in _FUNCTIONS:
            raise ExpressionError(f"unknown function {name!r}")

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"

    def children(self) -> Iterator[Expression]:
        yield from self.args

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        values = [arg.evaluate(row) for arg in self.args]
        try:
            return _FUNCTIONS[self.name](*values)
        except (ValueError, TypeError) as exc:
            raise ExpressionError(f"{self.name}(): {exc}") from None


# --------------------------------------------------------------------------
# Structural serialization — "expressions as data"
# --------------------------------------------------------------------------
#
# The tutorial highlights storing expressions *as data* inside the
# database (§2.2.c.i.2).  These converters give every expression a
# JSON-stable form so rules, subscriptions, and CHECK constraints can be
# persisted in catalog tables and journaled through the WAL.


def expression_to_dict(expression: Expression) -> dict[str, Any]:
    """Serialize an expression AST to a JSON-compatible dict."""
    if isinstance(expression, Literal):
        return {"node": "literal", "value": expression.value}
    if isinstance(expression, ColumnRef):
        return {
            "node": "column",
            "name": expression.name,
            "qualifier": expression.qualifier,
        }
    if isinstance(expression, BinaryOp):
        return {
            "node": "binary",
            "op": expression.op,
            "left": expression_to_dict(expression.left),
            "right": expression_to_dict(expression.right),
        }
    if isinstance(expression, UnaryOp):
        return {
            "node": "unary",
            "op": expression.op,
            "operand": expression_to_dict(expression.operand),
        }
    if isinstance(expression, IsNull):
        return {
            "node": "isnull",
            "operand": expression_to_dict(expression.operand),
            "negated": expression.negated,
        }
    if isinstance(expression, InList):
        return {
            "node": "in",
            "operand": expression_to_dict(expression.operand),
            "items": [expression_to_dict(item) for item in expression.items],
            "negated": expression.negated,
        }
    if isinstance(expression, Between):
        return {
            "node": "between",
            "operand": expression_to_dict(expression.operand),
            "low": expression_to_dict(expression.low),
            "high": expression_to_dict(expression.high),
            "negated": expression.negated,
        }
    if isinstance(expression, Like):
        return {
            "node": "like",
            "operand": expression_to_dict(expression.operand),
            "pattern": expression_to_dict(expression.pattern),
            "negated": expression.negated,
        }
    if isinstance(expression, Case):
        return {
            "node": "case",
            "branches": [
                [expression_to_dict(cond), expression_to_dict(value)]
                for cond, value in expression.branches
            ],
            "default": (
                expression_to_dict(expression.default)
                if expression.default is not None
                else None
            ),
        }
    if isinstance(expression, FunctionCall):
        return {
            "node": "call",
            "name": expression.name,
            "args": [expression_to_dict(arg) for arg in expression.args],
        }
    raise ExpressionError(
        f"cannot serialize expression node {type(expression).__name__}"
    )


def expression_from_dict(data: Mapping[str, Any]) -> Expression:
    """Rebuild an expression AST from :func:`expression_to_dict` output."""
    node = data.get("node")
    if node == "literal":
        return Literal(data["value"])
    if node == "column":
        return ColumnRef(data["name"], data.get("qualifier"))
    if node == "binary":
        return BinaryOp(
            data["op"],
            expression_from_dict(data["left"]),
            expression_from_dict(data["right"]),
        )
    if node == "unary":
        return UnaryOp(data["op"], expression_from_dict(data["operand"]))
    if node == "isnull":
        return IsNull(expression_from_dict(data["operand"]), data["negated"])
    if node == "in":
        return InList(
            expression_from_dict(data["operand"]),
            [expression_from_dict(item) for item in data["items"]],
            data["negated"],
        )
    if node == "between":
        return Between(
            expression_from_dict(data["operand"]),
            expression_from_dict(data["low"]),
            expression_from_dict(data["high"]),
            data["negated"],
        )
    if node == "like":
        return Like(
            expression_from_dict(data["operand"]),
            expression_from_dict(data["pattern"]),
            data["negated"],
        )
    if node == "case":
        return Case(
            [
                (expression_from_dict(cond), expression_from_dict(value))
                for cond, value in data["branches"]
            ],
            (
                expression_from_dict(data["default"])
                if data.get("default") is not None
                else None
            ),
        )
    if node == "call":
        return FunctionCall(
            data["name"], [expression_from_dict(arg) for arg in data["args"]]
        )
    raise ExpressionError(f"cannot deserialize expression node {node!r}")


# --------------------------------------------------------------------------
# Analysis helpers (rule-engine predicate index, planner)
# --------------------------------------------------------------------------


def conjuncts(expression: Expression) -> list[Expression]:
    """Split an expression on top-level ANDs.

    ``a = 1 AND b > 2 AND c LIKE 'x%'`` yields three conjuncts — the
    unit the predicate index and access-path planner both reason about.
    """
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def evaluate_predicate(expression: Expression, row: Mapping[str, Any]) -> bool:
    """Evaluate a boolean expression, mapping UNKNOWN to False."""
    return _truthy(expression.evaluate(row))


# --------------------------------------------------------------------------
# Parameter binding
# --------------------------------------------------------------------------


def contains_parameters(expression: Expression) -> bool:
    """Whether any :class:`Parameter` appears in this tree (memoized).

    Walks via :meth:`Expression.children`, so parameters inside
    ``IN (SELECT ...)`` / ``EXISTS`` subqueries are *not* seen here —
    the statement cache rejects those at bind time.
    """
    flag = expression.__dict__.get("_params_memo")
    if flag is None:
        if isinstance(expression, Parameter):
            flag = True
        else:
            flag = any(contains_parameters(child) for child in expression.children())
        expression._params_memo = flag
    return flag


def substitute_parameters(
    expression: Expression, params: tuple[Any, ...]
) -> Expression:
    """Rewrite ``?`` placeholders into literals, sharing param-free subtrees.

    Unchanged subtrees are returned by identity so their compiled-closure
    and referenced-column memos keep paying off across executions.
    """
    if not contains_parameters(expression):
        return expression
    if isinstance(expression, Parameter):
        if expression.index >= len(params):
            raise ExpressionError(f"unbound parameter ?{expression.index + 1}")
        return Literal(params[expression.index])
    sub = substitute_parameters
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op,
            sub(expression.left, params),
            sub(expression.right, params),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, sub(expression.operand, params))
    if isinstance(expression, IsNull):
        return IsNull(sub(expression.operand, params), expression.negated)
    if isinstance(expression, InList):
        return InList(
            sub(expression.operand, params),
            [sub(item, params) for item in expression.items],
            expression.negated,
        )
    if isinstance(expression, Between):
        return Between(
            sub(expression.operand, params),
            sub(expression.low, params),
            sub(expression.high, params),
            expression.negated,
        )
    if isinstance(expression, Like):
        return Like(
            sub(expression.operand, params),
            sub(expression.pattern, params),
            expression.negated,
        )
    if isinstance(expression, Case):
        return Case(
            [
                (sub(condition, params), sub(value, params))
                for condition, value in expression.branches
            ],
            (
                sub(expression.default, params)
                if expression.default is not None
                else None
            ),
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name, [sub(arg, params) for arg in expression.args]
        )
    raise ExpressionError(
        f"parameters are not supported inside {type(expression).__name__}"
    )


# --------------------------------------------------------------------------
# Expression compilation
# --------------------------------------------------------------------------
#
# ``compile_expression`` lowers an AST into a single Python closure:
# constant subtrees are folded at compile time, AND/OR keep Kleene
# short-circuit semantics, column lookups are pre-resolved, and constant
# LIKE patterns reuse their pre-built regex.  Node types the compiler
# does not cover (aggregates, subquery placeholders, user extensions)
# fall back to the interpreted ``evaluate`` bound method, so compiled
# and interpreted evaluation always agree.
#
# Closures are memoized per node (``_compiled_memo``), so shared
# sub-trees — and rule conditions evaluated millions of times — compile
# exactly once.  Trees must not be mutated in place after compilation;
# build a new tree (or call the owner's ``recompile()``) instead.
#
# Compiled closures bind their constants as *default arguments* rather
# than closure cells, and the dominant ``column <op> literal`` leaf
# shapes are fused into one closure each.  Both choices exist for the
# same reason: every function object, cell, and closure tuple a rule
# set retains is walked by each full garbage collection, and at 10k+
# registered rules that walk is what used to make the compiled path
# *slower* than the interpreted one.  Fusing cuts the per-rule
# long-lived object count roughly 3x (and saves a call per operand).

_CompiledFn = Callable[[Mapping[str, Any]], Any]


def compile_expression(expression: Expression) -> _CompiledFn:
    """Return a closure equivalent to ``expression.evaluate`` (memoized)."""
    fn = expression.__dict__.get("_compiled_memo")
    if fn is None:
        fn, const = _compile_node(expression)
        expression._compiled_memo = fn
        expression._compiled_const = const
    return fn


def compile_predicate(
    expression: Expression,
) -> Callable[[Mapping[str, Any]], bool]:
    """Compiled :func:`evaluate_predicate`: UNKNOWN maps to False."""
    pred = expression.__dict__.get("_predicate_memo")
    if pred is None:
        fn = compile_expression(expression)

        def pred(row: Mapping[str, Any], _fn: _CompiledFn = fn) -> bool:
            value = _fn(row)
            return value is not None and bool(value)

        expression._predicate_memo = pred
    return pred


def _compile_child(node: Expression) -> tuple[_CompiledFn, bool]:
    fn = node.__dict__.get("_compiled_memo")
    if fn is None:
        fn, const = _compile_node(node)
        node._compiled_memo = fn
        node._compiled_const = const
        return fn, const
    return fn, node.__dict__.get("_compiled_const", False)


def _fold_constant(fn: _CompiledFn) -> tuple[_CompiledFn, bool]:
    """Evaluate a closure with all-constant inputs once, at compile time.

    Errors (division by zero, type mismatches) are left to evaluation
    time so compiled trees raise exactly where interpreted ones do.
    """
    try:
        value = fn({})
    except ExpressionError:
        return fn, False
    return (lambda row: value), True


def _compile_node(node: Expression) -> tuple[_CompiledFn, bool]:
    """Lower one node; returns ``(closure, is_constant)``."""
    if isinstance(node, Literal):
        value = node.value
        return (lambda row: value), True

    if isinstance(node, ColumnRef):
        # Mirrors ColumnRef.evaluate exactly: ``in`` + ``[]`` so mapping
        # types with __contains__/__missing__ overrides (EventContext)
        # behave identically under compiled evaluation.
        if node.qualifier:
            name = node.name
            qualified = node.full_name

            def column_fn(
                row: Mapping[str, Any],
                _qualified: str = qualified,
                _name: str = name,
            ) -> Any:
                if _qualified in row:
                    return row[_qualified]
                if _name in row:
                    return row[_name]
                raise ExpressionError(f"unknown column {_qualified!r}")

            return column_fn, False
        bare_fn = _fused_column_lookup(node)
        assert bare_fn is not None
        return bare_fn, False

    if isinstance(node, Parameter):
        index = node.index

        def unbound_fn(row: Mapping[str, Any]) -> Any:
            raise ExpressionError(f"unbound parameter ?{index + 1}")

        return unbound_fn, False

    if isinstance(node, BinaryOp):
        return _compile_binary(node)

    if isinstance(node, UnaryOp):
        operand_fn, const = _compile_child(node.operand)
        if node.op == "NOT":

            def not_fn(row: Mapping[str, Any]) -> Any:
                value = operand_fn(row)
                if value is None:
                    return None
                return not value

        elif node.op == "-":

            def not_fn(row: Mapping[str, Any]) -> Any:
                value = operand_fn(row)
                if value is None:
                    return None
                return -value

        else:
            return node.evaluate, False
        return _fold_constant(not_fn) if const else (not_fn, False)

    if isinstance(node, IsNull):
        operand_fn, const = _compile_child(node.operand)
        if node.negated:

            def isnull_fn(row: Mapping[str, Any]) -> Any:
                return operand_fn(row) is not None

        else:

            def isnull_fn(row: Mapping[str, Any]) -> Any:
                return operand_fn(row) is None

        return _fold_constant(isnull_fn) if const else (isnull_fn, False)

    if isinstance(node, InList):
        operand_fn, operand_const = _compile_child(node.operand)
        item_infos = [_compile_child(item) for item in node.items]
        negated = node.negated
        items_const = all(const for _, const in item_infos)
        if items_const:
            raw = [fn({}) for fn, _ in item_infos]
            saw_null_const = any(candidate is None for candidate in raw)
            candidates = tuple(c for c in raw if c is not None)

            def in_fn(
                row: Mapping[str, Any],
                _operand: _CompiledFn = operand_fn,
                _cands: tuple[Any, ...] = candidates,
                _saw_null: bool = saw_null_const,
                _neg: bool = negated,
                _cmp: Callable[[Any, Any], int] = compare_values,
            ) -> Any:
                value = _operand(row)
                if value is None:
                    return None
                for candidate in _cands:
                    if _cmp(value, candidate) == 0:
                        return not _neg
                if _saw_null:
                    return None
                return _neg

        else:
            item_fns = [fn for fn, _ in item_infos]

            def in_fn(row: Mapping[str, Any]) -> Any:
                value = operand_fn(row)
                if value is None:
                    return None
                saw_null = False
                for item_fn in item_fns:
                    candidate = item_fn(row)
                    if candidate is None:
                        saw_null = True
                    elif compare_values(value, candidate) == 0:
                        return not negated
                if saw_null:
                    return None
                return negated

        if operand_const and items_const:
            return _fold_constant(in_fn)
        return in_fn, False

    if isinstance(node, Between):
        value_fn, value_const = _compile_child(node.operand)
        low_fn, low_const = _compile_child(node.low)
        high_fn, high_const = _compile_child(node.high)
        negated = node.negated

        if low_const and high_const and not value_const:
            # The common rule/WHERE shape: constant bounds evaluated at
            # compile time, one closure, no per-row bound calls.
            low_value = low_fn({})
            high_value = high_fn({})
            if (
                isinstance(node.operand, ColumnRef)
                and not node.operand.qualifier
                and low_value is not None
                and high_value is not None
            ):
                # Fully fused: lookup + range check in one closure.
                def between_col_fn(
                    row: Mapping[str, Any],
                    _name: str = node.operand.name,
                    _low: Any = low_value,
                    _high: Any = high_value,
                    _neg: bool = negated,
                    _cmp: Callable[[Any, Any], int] = compare_values,
                ) -> Any:
                    if _name in row:
                        value = row[_name]
                    else:
                        raise ExpressionError(f"unknown column {_name!r}")
                    if value is None:
                        return None
                    inside = _cmp(value, _low) >= 0 and _cmp(value, _high) <= 0
                    return not inside if _neg else inside

                return between_col_fn, False

            def between_fn(
                row: Mapping[str, Any],
                _value: _CompiledFn = value_fn,
                _low: Any = low_value,
                _high: Any = high_value,
                _neg: bool = negated,
                _cmp: Callable[[Any, Any], int] = compare_values,
            ) -> Any:
                value = _value(row)
                if value is None or _low is None or _high is None:
                    return None
                inside = _cmp(value, _low) >= 0 and _cmp(value, _high) <= 0
                return not inside if _neg else inside

            return between_fn, False

        def between_fn(
            row: Mapping[str, Any],
            _value: _CompiledFn = value_fn,
            _low_fn: _CompiledFn = low_fn,
            _high_fn: _CompiledFn = high_fn,
            _neg: bool = negated,
            _cmp: Callable[[Any, Any], int] = compare_values,
        ) -> Any:
            value = _value(row)
            low = _low_fn(row)
            high = _high_fn(row)
            if value is None or low is None or high is None:
                return None
            inside = _cmp(value, low) >= 0 and _cmp(value, high) <= 0
            return not inside if _neg else inside

        if value_const and low_const and high_const:
            return _fold_constant(between_fn)
        return between_fn, False

    if isinstance(node, Like):
        operand_fn, operand_const = _compile_child(node.operand)
        negated = node.negated
        if node._regex is not None:

            def like_fn(
                row: Mapping[str, Any],
                _operand: _CompiledFn = operand_fn,
                _match: Callable[[str], Any] = node._regex.fullmatch,
                _neg: bool = negated,
            ) -> Any:
                value = _operand(row)
                if value is None:
                    return None
                matched = _match(str(value)) is not None
                return not matched if _neg else matched

            if operand_const:
                return _fold_constant(like_fn)
        else:
            pattern_fn, _ = _compile_child(node.pattern)

            def like_fn(row: Mapping[str, Any]) -> Any:
                value = operand_fn(row)
                if value is None:
                    return None
                pattern_value = pattern_fn(row)
                if pattern_value is None:
                    return None
                matched = (
                    _like_to_regex(str(pattern_value)).fullmatch(str(value))
                    is not None
                )
                return not matched if negated else matched

        return like_fn, False

    if isinstance(node, Case):
        branch_fns = [
            (_compile_child(condition), _compile_child(value))
            for condition, value in node.branches
        ]
        compiled_branches = [
            (condition_info[0], value_info[0])
            for condition_info, value_info in branch_fns
        ]
        default_info = (
            _compile_child(node.default) if node.default is not None else None
        )
        default_fn = default_info[0] if default_info is not None else None

        def case_fn(row: Mapping[str, Any]) -> Any:
            for condition_fn, value_fn in compiled_branches:
                if condition_fn(row):
                    return value_fn(row)
            if default_fn is not None:
                return default_fn(row)
            return None

        all_const = all(
            condition_info[1] and value_info[1]
            for condition_info, value_info in branch_fns
        ) and (default_info is None or default_info[1])
        return _fold_constant(case_fn) if all_const else (case_fn, False)

    if isinstance(node, FunctionCall):
        # Never folded: registered functions may be impure, and
        # re-registration under the same name must take effect — so the
        # registry is consulted per call, exactly like evaluate().
        name = node.name
        arg_fns = [_compile_child(arg)[0] for arg in node.args]

        def call_fn(row: Mapping[str, Any]) -> Any:
            values = [arg_fn(row) for arg_fn in arg_fns]
            try:
                return _FUNCTIONS[name](*values)
            except (ValueError, TypeError) as exc:
                raise ExpressionError(f"{name}(): {exc}") from None

        return call_fn, False

    # Aggregates, subquery placeholders, user-defined nodes: interpreted.
    return node.evaluate, False


# Comparison result (-1/0/1 from compare_values) -> acceptable values.
_CMP_OK: dict[str, tuple[int, ...]] = {
    "=": (0,),
    "!=": (-1, 1),
    "<": (-1,),
    "<=": (-1, 0),
    ">": (1,),
    ">=": (0, 1),
}

_CMP_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _fused_column_lookup(node: ColumnRef) -> _CompiledFn | None:
    """Single-closure column fetch for bare (unqualified) references."""
    if node.qualifier:
        return None
    name = node.name

    def column_fn(row: Mapping[str, Any], _name: str = name) -> Any:
        if _name in row:
            return row[_name]
        raise ExpressionError(f"unknown column {_name!r}")

    return column_fn


def _fused_comparison(node: BinaryOp) -> _CompiledFn | None:
    """Fuse ``col <op> literal`` (either orientation) into one closure.

    Mirrors the generic path exactly: the column lookup uses the
    ``in`` + ``[]`` protocol (EventContext-compatible), missing columns
    raise, and a NULL on either side yields UNKNOWN.
    """
    op = node.op
    if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
        column, const = node.left, node.right.value
    elif isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
        column, const = node.right, node.left.value
        op = _CMP_FLIP[op]
    else:
        return None
    if column.qualifier:
        return None
    name = column.name
    if const is None:
        # literal NULL: the lookup still runs (missing columns raise),
        # but the comparison is always UNKNOWN.
        def null_cmp_fn(row: Mapping[str, Any], _name: str = name) -> Any:
            if _name in row:
                return None
            raise ExpressionError(f"unknown column {_name!r}")

        return null_cmp_fn
    ok = _CMP_OK[op]

    def cmp_fn(
        row: Mapping[str, Any],
        _name: str = name,
        _const: Any = const,
        _ok: tuple[int, ...] = ok,
        _cmp: Callable[[Any, Any], int] = compare_values,
    ) -> Any:
        if _name in row:
            value = row[_name]
        else:
            raise ExpressionError(f"unknown column {_name!r}")
        if value is None:
            return None
        return _cmp(value, _const) in _ok

    return cmp_fn


def _compile_binary(node: BinaryOp) -> tuple[_CompiledFn, bool]:
    op = node.op

    if op in _COMPARISONS:
        fused = _fused_comparison(node)
        if fused is not None:
            return fused, False

    left_fn, left_const = _compile_child(node.left)
    right_fn, right_const = _compile_child(node.right)
    both_const = left_const and right_const

    if op == "AND":

        def bin_fn(
            row: Mapping[str, Any],
            _left: _CompiledFn = left_fn,
            _right: _CompiledFn = right_fn,
        ) -> Any:
            left = _left(row)
            if left is not None and not left:
                return False
            right = _right(row)
            if right is not None and not right:
                return False
            if left is None or right is None:
                return None
            return True

    elif op == "OR":

        def bin_fn(
            row: Mapping[str, Any],
            _left: _CompiledFn = left_fn,
            _right: _CompiledFn = right_fn,
        ) -> Any:
            left = _left(row)
            if left:
                return True
            right = _right(row)
            if right:
                return True
            if left is None or right is None:
                return None
            return False

    elif op in _COMPARISONS:
        ok = _CMP_OK[op]

        def bin_fn(
            row: Mapping[str, Any],
            _left: _CompiledFn = left_fn,
            _right: _CompiledFn = right_fn,
            _ok: tuple[int, ...] = ok,
            _cmp: Callable[[Any, Any], int] = compare_values,
        ) -> Any:
            left = _left(row)
            right = _right(row)
            if left is None or right is None:
                return None
            return _cmp(left, right) in _ok

    elif op == "||":

        def bin_fn(
            row: Mapping[str, Any],
            _left: _CompiledFn = left_fn,
            _right: _CompiledFn = right_fn,
        ) -> Any:
            left = _left(row)
            right = _right(row)
            if left is None or right is None:
                return None
            return str(left) + str(right)

    elif op == "/":

        def bin_fn(
            row: Mapping[str, Any],
            _left: _CompiledFn = left_fn,
            _right: _CompiledFn = right_fn,
        ) -> Any:
            left = _left(row)
            right = _right(row)
            if left is None or right is None:
                return None
            if right == 0:
                raise ExpressionError("division by zero")
            return left / right

    elif op in _ARITHMETIC:
        arith = _ARITHMETIC[op]

        def bin_fn(
            row: Mapping[str, Any],
            _left: _CompiledFn = left_fn,
            _right: _CompiledFn = right_fn,
            _arith: Callable[[Any, Any], Any] = arith,
            _op: str = op,
        ) -> Any:
            left = _left(row)
            right = _right(row)
            if left is None or right is None:
                return None
            try:
                return _arith(left, right)
            except TypeError:
                raise ExpressionError(
                    f"operator {_op!r} not applicable to "
                    f"{type(left).__name__} and {type(right).__name__}"
                ) from None

    else:
        return node.evaluate, False

    return _fold_constant(bin_fn) if both_const else (bin_fn, False)


# --------------------------------------------------------------------------
# Delta-update compilation (incremental view maintenance)
# --------------------------------------------------------------------------
#
# A materialized view's per-row work is fixed at definition time: test
# the view predicate, extract the grouping key, extract one value per
# aggregate.  ``compile_delta_update`` lowers all of that into a single
# closure — the same treatment rule predicates got in the compiled rule
# engine — so applying a delta batch is a tight loop over row dicts
# with no AST interpretation on the hot path.

_DeltaFn = Callable[[Mapping[str, Any]], "tuple[Any, dict[str, Any]] | None"]


def compile_delta_update(
    extractors: Mapping[str, Expression],
    predicate: Expression | None = None,
    key: Expression | None = None,
) -> _DeltaFn:
    """Compile a view's row-delta into one closure.

    The closure maps a row to ``(group_key, {output: value})``, or
    ``None`` when the row fails ``predicate`` (so the delta does not
    touch the view).  All sub-expressions share the per-node compiled
    memos, so repeated view definitions over the same trees reuse work.
    """
    pred_fn = compile_predicate(predicate) if predicate is not None else None
    key_fn = compile_expression(key) if key is not None else None
    items = tuple(
        (output, compile_expression(expression))
        for output, expression in extractors.items()
    )

    def delta_fn(
        row: Mapping[str, Any],
        _pred: Callable[[Mapping[str, Any]], bool] | None = pred_fn,
        _key: _CompiledFn | None = key_fn,
        _items: tuple[tuple[str, _CompiledFn], ...] = items,
    ) -> tuple[Any, dict[str, Any]] | None:
        if _pred is not None and not _pred(row):
            return None
        group = _key(row) if _key is not None else None
        return group, {output: fn(row) for output, fn in _items}

    return delta_fn


# --------------------------------------------------------------------------
# Vectorized compilation (columnar fast path)
# --------------------------------------------------------------------------
#
# ``compile_vector_predicate`` / ``compile_vector_extractor`` lower the
# same AST the row path compiles into batch kernels over a
# :class:`repro.db.columnar.ColumnBatch`.  Three-valued logic is carried
# explicitly: every boolean result is a pair ``(truth, nulls)`` of
# aligned masks with the invariant ``truth[nulls] == False`` (UNKNOWN is
# never true), so Kleene AND/OR compose by plain mask algebra.
#
# The contract with the row path is *fallback, never divergence*: any
# node shape whose vectorized semantics would not match ``evaluate``
# exactly — impure functions, CASE, string concatenation, per-row
# division-by-zero hazards, text-vs-text column comparisons, constants
# outside the int64-safe range in arithmetic — raises
# :class:`VectorFallback` at compile time, and the executor reruns the
# statement on the row path.  Kernels may also raise it at *runtime*
# (a column the store could not encode); the executor treats both alike.
#
# ``compare_values`` gives the engine one quirk the kernels exploit:
# cross-type comparisons degrade to comparing *type names*, so a numeric
# column compared against a string constant has a constant result for
# every non-null row ("int"/"float" < "str") — compiled to a constant
# mask rather than falling back.

_VECTOR_CMP: dict[str, Callable[[Any, Any], Any]] = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_VECTOR_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
}

#: Integer constants beyond this magnitude can overflow int64 kernels
#: in *arithmetic* (numpy raises OverflowError); comparisons are exact
#: for arbitrary Python ints and need no guard.
_INT64_ARITH_BOUND = 2**62


class VectorFallback(Exception):
    """This expression (or this batch) cannot be vectorized; the caller
    must rerun on the row path, which has identical semantics."""


def _vector_np() -> Any:
    from repro.db.columnar import np

    if np is None:
        raise VectorFallback("numpy unavailable")
    return np


_PURE_CONST_NODES = (Literal, BinaryOp, UnaryOp, IsNull, InList, Between, Like, Case)


def _pure_constant(node: Expression) -> bool:
    """Whether a column-free subtree may be folded at compile time.

    Parameters, function calls (possibly impure, re-registrable), and
    unknown node classes are excluded — mirroring the row compiler,
    which never folds FunctionCall.
    """
    if not isinstance(node, _PURE_CONST_NODES):
        return False
    return all(_pure_constant(child) for child in node.children())


def _vector_const(node: Expression) -> Any:
    try:
        return compile_expression(node)({})
    except (ExpressionError, TypeError, ValueError, ZeroDivisionError):
        # The row path raises at evaluation; fall back so it does.
        raise VectorFallback("constant subtree raises at evaluation") from None


def _name_sign(a: str, b: str) -> int:
    return (a > b) - (a < b)


def _cross_type_sign(side_class: str, const: Any) -> int | None:
    """The constant ``compare_values`` sign for every non-null value of
    a column class against a constant of an unrelated type, or None when
    the sign is not uniform (int and float names straddle the constant's
    type name)."""
    tname = type(const).__name__
    if side_class == "num":
        s_int = _name_sign("int", tname)
        s_float = _name_sign("float", tname)
        if s_int == s_float and s_int != 0:
            return s_int
        return None
    sign = _name_sign("str", tname)
    return sign if sign != 0 else None


def _as_bool_closure(flavor: str, fn: Any, np: Any) -> Callable[[Any], tuple[Any, Any]]:
    """Adapt any flavor to boolean ``(truth, nulls)`` with SQL truthiness
    (``_truthy``): nonzero numbers and non-empty strings are true."""
    if flavor == "bool":
        return fn
    if flavor == "const":
        truth = np.bool_(_truthy(fn))
        null = np.bool_(fn is None)

        def const_fn(batch: Any, _t: Any = truth, _n: Any = null) -> tuple[Any, Any]:
            return _t, _n

        return const_fn
    if flavor == "num":

        def num_fn(batch: Any, _fn: Any = fn) -> tuple[Any, Any]:
            values, nulls = _fn(batch)
            return (values != 0) & ~nulls, nulls

        return num_fn

    def text_fn(batch: Any, _fn: Any = fn, _np: Any = np) -> tuple[Any, Any]:
        codes, nulls, dictionary = _fn(batch)
        if dictionary.shape[0] == 0:
            return _np.zeros(codes.shape[0], dtype=bool), nulls
        lookup = _np.fromiter(
            (len(s) > 0 for s in dictionary), dtype=bool, count=dictionary.shape[0]
        )
        return lookup[codes] & ~nulls, nulls

    return text_fn


def _as_num_closure(flavor: str, fn: Any, np: Any) -> Any:
    """Adapt bool results to int64 value arrays (matching the bool→int
    fold ``compare_values`` and Python arithmetic both apply)."""
    if flavor == "num":
        return fn
    if flavor == "bool":

        def conv(batch: Any, _fn: Any = fn, _np: Any = np) -> tuple[Any, Any]:
            truth, nulls = _fn(batch)
            return truth.astype(_np.int64), nulls

        return conv
    raise VectorFallback(f"flavor {flavor!r} not numeric")


def _vc_cmp_text_const(fn: Any, op: str, const: str, np: Any) -> Any:
    """``text_column <op> string_constant`` on dictionary codes.  The
    dictionary is sorted, so ordered comparisons are a searchsorted
    bound on codes and equality is one position probe."""

    def text_cmp_fn(
        batch: Any, _fn: Any = fn, _op: str = op, _c: str = const, _np: Any = np
    ) -> tuple[Any, Any]:
        codes, nulls, dictionary = _fn(batch)
        valid = ~nulls
        m = dictionary.shape[0]
        if m == 0:
            return _np.zeros(codes.shape[0], dtype=bool), nulls
        if _op in ("=", "!="):
            pos = int(_np.searchsorted(dictionary, _c))
            found = pos < m and dictionary[pos] == _c
            if _op == "=":
                if found:
                    truth = (codes == pos) & valid
                else:
                    truth = _np.zeros(codes.shape[0], dtype=bool)
            else:
                truth = ((codes != pos) & valid) if found else valid
        elif _op == "<":
            truth = (codes < int(_np.searchsorted(dictionary, _c, side="left"))) & valid
        elif _op == "<=":
            truth = (codes < int(_np.searchsorted(dictionary, _c, side="right"))) & valid
        elif _op == ">":
            truth = (codes >= int(_np.searchsorted(dictionary, _c, side="right"))) & valid
        else:  # >=
            truth = (codes >= int(_np.searchsorted(dictionary, _c, side="left"))) & valid
        return truth, nulls

    return text_cmp_fn


def _vc_cmp_const(flavor: str, fn: Any, op: str, const: Any, np: Any) -> Any:
    """``<array side> <op> <constant>`` as a boolean closure."""
    if const is None:

        def null_fn(batch: Any, _fn: Any = fn, _np: Any = np) -> tuple[Any, Any]:
            nulls = _fn(batch)[1]
            n = nulls.shape[0]
            return _np.zeros(n, dtype=bool), _np.ones(n, dtype=bool)

        return null_fn
    if flavor == "bool":
        return _vc_cmp_const("num", _as_num_closure("bool", fn, np), op, const, np)
    if isinstance(const, bool):
        const = int(const)
    if flavor == "num" and isinstance(const, (int, float)):
        cmp_fn = _VECTOR_CMP[op]

        def num_cmp_fn(
            batch: Any, _fn: Any = fn, _c: Any = const, _cmp: Any = cmp_fn
        ) -> tuple[Any, Any]:
            values, nulls = _fn(batch)
            return _cmp(values, _c) & ~nulls, nulls

        return num_cmp_fn
    if flavor == "text" and isinstance(const, str):
        return _vc_cmp_text_const(fn, op, const, np)
    sign = _cross_type_sign("num" if flavor == "num" else "text", const)
    if sign is None:
        raise VectorFallback("comparison constant straddles type ordering")
    truth_const = sign in _CMP_OK[op]

    def const_sign_fn(
        batch: Any, _fn: Any = fn, _t: bool = truth_const, _np: Any = np
    ) -> tuple[Any, Any]:
        nulls = _fn(batch)[1]
        if _t:
            return ~nulls, nulls
        return _np.zeros(nulls.shape[0], dtype=bool), nulls

    return const_sign_fn


def _vc_binary(node: BinaryOp, kinds: Mapping[str, str], np: Any) -> tuple[str, Any]:
    op = node.op

    if op in ("AND", "OR"):
        lflavor, lraw = _vc_node(node.left, kinds, np)
        rflavor, rraw = _vc_node(node.right, kinds, np)
        lfn = _as_bool_closure(lflavor, lraw, np)
        rfn = _as_bool_closure(rflavor, rraw, np)
        if op == "AND":

            def and_fn(batch: Any, _l: Any = lfn, _r: Any = rfn) -> tuple[Any, Any]:
                lt, ln = _l(batch)
                rt, rn = _r(batch)
                lf = ~lt & ~ln
                rf = ~rt & ~rn
                return lt & rt, (ln | rn) & ~lf & ~rf

            return "bool", and_fn

        def or_fn(batch: Any, _l: Any = lfn, _r: Any = rfn) -> tuple[Any, Any]:
            lt, ln = _l(batch)
            rt, rn = _r(batch)
            return lt | rt, (ln | rn) & ~lt & ~rt

        return "bool", or_fn

    if op in _COMPARISONS:
        lflavor, lraw = _vc_node(node.left, kinds, np)
        rflavor, rraw = _vc_node(node.right, kinds, np)
        if lflavor == "const":
            return "bool", _vc_cmp_const(rflavor, rraw, _CMP_FLIP[op], lraw, np)
        if rflavor == "const":
            return "bool", _vc_cmp_const(lflavor, lraw, op, rraw, np)
        # Array vs array.
        if lflavor == "text" and rflavor == "text":
            raise VectorFallback("text-vs-text column comparison")
        if "text" in (lflavor, rflavor):
            # Cross-class: compare_values degrades to type names, so the
            # sign is constant (str sorts after int/float) for valid rows.
            sign = 1 if lflavor == "text" else -1
            truth_const = sign in _CMP_OK[op]
            lnfn = lraw
            rnfn = rraw

            def cross_fn(
                batch: Any,
                _l: Any = lnfn,
                _r: Any = rnfn,
                _t: bool = truth_const,
                _np: Any = np,
            ) -> tuple[Any, Any]:
                nulls = _l(batch)[1] | _r(batch)[1]
                if _t:
                    return ~nulls, nulls
                return _np.zeros(nulls.shape[0], dtype=bool), nulls

            return "bool", cross_fn
        lfn = _as_num_closure(lflavor, lraw, np)
        rfn = _as_num_closure(rflavor, rraw, np)
        cmp_fn = _VECTOR_CMP[op]

        def pair_cmp_fn(
            batch: Any, _l: Any = lfn, _r: Any = rfn, _cmp: Any = cmp_fn
        ) -> tuple[Any, Any]:
            lv, ln = _l(batch)
            rv, rn = _r(batch)
            nulls = ln | rn
            return _cmp(lv, rv) & ~nulls, nulls

        return "bool", pair_cmp_fn

    if op in ("+", "-", "*", "/", "%"):
        lflavor, lraw = _vc_node(node.left, kinds, np)
        rflavor, rraw = _vc_node(node.right, kinds, np)

        def arith_side(flavor: str, raw: Any) -> Any:
            if flavor == "const":
                value = int(raw) if isinstance(raw, bool) else raw
                if not isinstance(value, (int, float)):
                    raise VectorFallback("non-numeric arithmetic constant")
                if isinstance(value, int) and abs(value) > _INT64_ARITH_BOUND:
                    raise VectorFallback("arithmetic constant exceeds int64 range")
                return value
            return _as_num_closure(flavor, raw, np)

        left_side = arith_side(lflavor, lraw)
        right_side = arith_side(rflavor, rraw)

        if op in ("/", "%"):
            # Only a nonzero *constant* divisor is safe: with a column
            # divisor, vector evaluation would visit rows the row path
            # never evaluates (short circuits, index candidates) and so
            # could raise where the row path does not — or vice versa.
            if rflavor != "const" or right_side == 0:
                raise VectorFallback("division requires nonzero constant divisor")
            if lflavor == "const":
                raise VectorFallback("constant dividend over column divisor")
            apply_fn = _operator.truediv if op == "/" else np.mod

            def div_fn(
                batch: Any, _l: Any = left_side, _c: Any = right_side, _apply: Any = apply_fn
            ) -> tuple[Any, Any]:
                values, nulls = _l(batch)
                return _apply(values, _c), nulls

            return "num", div_fn

        arith_fn = _VECTOR_ARITH[op]
        if lflavor == "const":

            def const_left_fn(
                batch: Any, _c: Any = left_side, _r: Any = right_side, _apply: Any = arith_fn
            ) -> tuple[Any, Any]:
                values, nulls = _r(batch)
                return _apply(_c, values), nulls

            return "num", const_left_fn
        if rflavor == "const":

            def const_right_fn(
                batch: Any, _l: Any = left_side, _c: Any = right_side, _apply: Any = arith_fn
            ) -> tuple[Any, Any]:
                values, nulls = _l(batch)
                return _apply(values, _c), nulls

            return "num", const_right_fn

        def pair_arith_fn(
            batch: Any, _l: Any = left_side, _r: Any = right_side, _apply: Any = arith_fn
        ) -> tuple[Any, Any]:
            lv, ln = _l(batch)
            rv, rn = _r(batch)
            return _apply(lv, rv), ln | rn

        return "num", pair_arith_fn

    # ``||`` would need runtime dictionary construction; unknown ops
    # raise on the row path.
    raise VectorFallback(f"operator {op!r} not vectorized")


def _vc_node(node: Expression, kinds: Mapping[str, str], np: Any) -> tuple[str, Any]:
    """Lower one node; returns ``(flavor, payload)`` where payload is the
    constant value for flavor ``"const"`` and a batch closure otherwise.

    Closure results by flavor — ``"bool"``: ``(truth, nulls)``;
    ``"num"``: ``(values, nulls)``; ``"text"``: ``(codes, nulls,
    dictionary)``.  All arrays are read-only by convention.
    """
    if not node.referenced_columns():
        if not _pure_constant(node):
            raise VectorFallback(
                f"unsupported constant node {type(node).__name__}"
            )
        return "const", _vector_const(node)

    if isinstance(node, ColumnRef):
        kind = kinds.get(node.name)
        if kind is None:
            # JSON column or unknown name; the row path either handles
            # it or raises the proper unknown-column error.
            raise VectorFallback(f"column {node.name!r} not vectorizable")
        if kind == "text":

            def text_col_fn(batch: Any, _name: str = node.name) -> tuple[Any, Any, Any]:
                series = batch.series(_name)
                if series is None:
                    raise VectorFallback(f"column {_name!r} not encoded")
                return series.values, series.nulls, series.dictionary

            return "text", text_col_fn

        if kind == "bool":
            # Bool columns surface as the "bool" flavor so aggregates
            # can reproduce the row path's True/False results; numeric
            # contexts convert via _as_num_closure (bool -> int64).

            def bool_col_fn(batch: Any, _name: str = node.name) -> tuple[Any, Any]:
                series = batch.series(_name)
                if series is None:
                    raise VectorFallback(f"column {_name!r} not encoded")
                return series.values != 0, series.nulls

            return "bool", bool_col_fn

        def num_col_fn(batch: Any, _name: str = node.name) -> tuple[Any, Any]:
            series = batch.series(_name)
            if series is None:
                raise VectorFallback(f"column {_name!r} not encoded")
            return series.values, series.nulls

        return "num", num_col_fn

    if isinstance(node, BinaryOp):
        return _vc_binary(node, kinds, np)

    if isinstance(node, UnaryOp):
        flavor, raw = _vc_node(node.operand, kinds, np)
        if node.op == "NOT":
            bool_fn = _as_bool_closure(flavor, raw, np)

            def not_fn(batch: Any, _fn: Any = bool_fn) -> tuple[Any, Any]:
                truth, nulls = _fn(batch)
                return ~truth & ~nulls, nulls

            return "bool", not_fn
        if node.op == "-":
            num_fn = _as_num_closure(flavor, raw, np)

            def neg_fn(batch: Any, _fn: Any = num_fn) -> tuple[Any, Any]:
                values, nulls = _fn(batch)
                return -values, nulls

            return "num", neg_fn
        raise VectorFallback(f"unary operator {node.op!r} not vectorized")

    if isinstance(node, IsNull):
        flavor, raw = _vc_node(node.operand, kinds, np)
        if flavor == "const":
            raise VectorFallback("IS NULL over constant reached vector path")

        def isnull_fn(
            batch: Any, _fn: Any = raw, _neg: bool = node.negated, _np: Any = np
        ) -> tuple[Any, Any]:
            nulls = _fn(batch)[1]
            truth = ~nulls if _neg else nulls
            return truth, _np.zeros(nulls.shape[0], dtype=bool)

        return "bool", isnull_fn

    if isinstance(node, InList):
        flavor, raw = _vc_node(node.operand, kinds, np)
        if flavor == "const":
            raise VectorFallback("IN over constant operand reached vector path")
        if flavor == "bool":
            flavor, raw = "num", _as_num_closure("bool", raw, np)
        consts = []
        for item in node.items:
            if item.referenced_columns() or not _pure_constant(item):
                raise VectorFallback("IN list with non-constant items")
            consts.append(_vector_const(item))
        saw_null = any(value is None for value in consts)
        if flavor == "num":
            candidates = tuple(
                int(value) if isinstance(value, bool) else value
                for value in consts
                if isinstance(value, (bool, int, float))
            )

            def in_num_fn(
                batch: Any,
                _fn: Any = raw,
                _cands: tuple = candidates,
                _saw_null: bool = saw_null,
                _neg: bool = node.negated,
                _np: Any = np,
            ) -> tuple[Any, Any]:
                values, nulls = _fn(batch)
                valid = ~nulls
                matched = _np.zeros(values.shape[0], dtype=bool)
                for candidate in _cands:
                    matched |= values == candidate
                matched &= valid
                if _neg:
                    if _saw_null:
                        truth = _np.zeros(values.shape[0], dtype=bool)
                    else:
                        truth = valid & ~matched
                else:
                    truth = matched
                return truth, nulls | (valid & ~matched & _saw_null)

            return "bool", in_num_fn

        text_candidates = tuple(value for value in consts if isinstance(value, str))

        def in_text_fn(
            batch: Any,
            _fn: Any = raw,
            _cands: tuple = text_candidates,
            _saw_null: bool = saw_null,
            _neg: bool = node.negated,
            _np: Any = np,
        ) -> tuple[Any, Any]:
            codes, nulls, dictionary = _fn(batch)
            valid = ~nulls
            matched = _np.zeros(codes.shape[0], dtype=bool)
            m = dictionary.shape[0]
            if m:
                for candidate in _cands:
                    pos = int(_np.searchsorted(dictionary, candidate))
                    if pos < m and dictionary[pos] == candidate:
                        matched |= codes == pos
            matched &= valid
            if _neg:
                if _saw_null:
                    truth = _np.zeros(codes.shape[0], dtype=bool)
                else:
                    truth = valid & ~matched
            else:
                truth = matched
            return truth, nulls | (valid & ~matched & _saw_null)

        return "bool", in_text_fn

    if isinstance(node, Between):
        flavor, raw = _vc_node(node.operand, kinds, np)
        if flavor == "const":
            raise VectorFallback("BETWEEN over constant operand reached vector path")
        for bound in (node.low, node.high):
            if bound.referenced_columns() or not _pure_constant(bound):
                raise VectorFallback("BETWEEN with non-constant bounds")
        low_value = _vector_const(node.low)
        high_value = _vector_const(node.high)
        if low_value is None or high_value is None:

            def null_between_fn(
                batch: Any, _fn: Any = raw, _np: Any = np
            ) -> tuple[Any, Any]:
                n = _fn(batch)[1].shape[0]
                return _np.zeros(n, dtype=bool), _np.ones(n, dtype=bool)

            return "bool", null_between_fn
        ge_fn = _vc_cmp_const(flavor, raw, ">=", low_value, np)
        le_fn = _vc_cmp_const(flavor, raw, "<=", high_value, np)

        def between_fn(
            batch: Any, _ge: Any = ge_fn, _le: Any = le_fn, _neg: bool = node.negated
        ) -> tuple[Any, Any]:
            ge_truth, nulls = _ge(batch)
            le_truth, _ = _le(batch)
            inside = ge_truth & le_truth
            if _neg:
                return ~inside & ~nulls, nulls
            return inside, nulls

        return "bool", between_fn

    if isinstance(node, Like):
        flavor, raw = _vc_node(node.operand, kinds, np)
        if flavor != "text":
            # Numeric operands stringify per row; not worth kernels.
            raise VectorFallback("LIKE over non-text operand")
        regex = node._regex
        if regex is None:
            if node.pattern.referenced_columns() or not _pure_constant(node.pattern):
                raise VectorFallback("LIKE with non-constant pattern")
            pattern_value = _vector_const(node.pattern)
            if pattern_value is None:

                def null_like_fn(
                    batch: Any, _fn: Any = raw, _np: Any = np
                ) -> tuple[Any, Any]:
                    nulls = _fn(batch)[1]
                    n = nulls.shape[0]
                    truth = _np.zeros(n, dtype=bool)
                    result_nulls = _np.ones(n, dtype=bool)
                    # Non-null values with a NULL pattern are UNKNOWN;
                    # NULL values are UNKNOWN too — all rows UNKNOWN.
                    return truth, result_nulls

                return "bool", null_like_fn
            regex = _like_to_regex(str(pattern_value))

        def like_fn(
            batch: Any,
            _fn: Any = raw,
            _match: Any = regex.fullmatch,
            _neg: bool = node.negated,
            _np: Any = np,
        ) -> tuple[Any, Any]:
            codes, nulls, dictionary = _fn(batch)
            valid = ~nulls
            m = dictionary.shape[0]
            if m == 0:
                return _np.zeros(codes.shape[0], dtype=bool), nulls
            # One regex test per *distinct* value, then a code gather.
            lookup = _np.fromiter(
                (_match(s) is not None for s in dictionary), dtype=bool, count=m
            )
            hit = lookup[codes]
            truth = (~hit & valid) if _neg else (hit & valid)
            return truth, nulls

        return "bool", like_fn

    # Case, FunctionCall, Parameter, AggregateCall, user nodes.
    raise VectorFallback(f"node {type(node).__name__} not vectorized")


def _vector_signature(kinds: Mapping[str, str]) -> tuple:
    return tuple(sorted(kinds.items()))


def compile_vector_predicate(
    expression: Expression, kinds: Mapping[str, str]
) -> Callable[[Any], Any]:
    """Compile a WHERE tree into ``fn(batch) -> bool ndarray`` (truth
    mask; UNKNOWN maps to False, like :func:`evaluate_predicate`).

    Memoized per node and per column-kind signature, so cached statement
    templates compile their kernels once.  Raises :class:`VectorFallback`
    when any sub-expression is not vectorizable.
    """
    memo = expression.__dict__.setdefault("_vector_memo", {})
    key = ("pred", _vector_signature(kinds))
    cached = memo.get(key)
    if cached is not None:
        if isinstance(cached, VectorFallback):
            raise cached
        return cached
    try:
        np = _vector_np()
        flavor, raw = _vc_node(expression, kinds, np)
        bool_fn = _as_bool_closure(flavor, raw, np)
        if flavor == "const":
            truth_const = _truthy(raw)

            def predicate(batch: Any, _t: bool = truth_const, _np: Any = np) -> Any:
                if _t:
                    return _np.ones(batch.n, dtype=bool)
                return _np.zeros(batch.n, dtype=bool)

        else:

            def predicate(batch: Any, _fn: Any = bool_fn) -> Any:
                return _fn(batch)[0]

    except VectorFallback as exc:
        memo[key] = exc
        raise
    memo[key] = predicate
    return predicate


def compile_vector_extractor(
    expression: Expression, kinds: Mapping[str, str]
) -> tuple[str, Any]:
    """Compile a value expression (aggregate argument, GROUP BY key)
    into ``(flavor, payload)``: the constant value for ``"const"``, else
    a closure returning the flavor's arrays (see :func:`_vc_node`).
    Memoized like :func:`compile_vector_predicate`."""
    memo = expression.__dict__.setdefault("_vector_memo", {})
    key = ("extract", _vector_signature(kinds))
    cached = memo.get(key)
    if cached is not None:
        if isinstance(cached, VectorFallback):
            raise cached
        return cached
    try:
        np = _vector_np()
        result = _vc_node(expression, kinds, np)
    except VectorFallback as exc:
        memo[key] = exc
        raise
    memo[key] = result
    return result
