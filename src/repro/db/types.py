"""Column types and value coercion for the embedded database.

Each type is a singleton :class:`ColumnType` instance that knows how to
coerce Python values into its canonical representation and how to
compare for index ordering.  ``None`` is the SQL NULL and is accepted by
every type; nullability is enforced at the schema layer, not here.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import TypeMismatchError


class ColumnType:
    """A database column type.

    Instances are immutable singletons (``INT``, ``REAL``, ...) shared
    by every schema.  Equality is identity; the parser maps SQL type
    names onto these singletons via :func:`type_by_name`.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this type's canonical representation.

        Raises :class:`TypeMismatchError` when the value cannot be
        represented without information loss (e.g. ``"abc"`` as INT).
        ``None`` always passes through as SQL NULL.
        """
        if value is None:
            return None
        return self._coerce(value)

    def _coerce(self, value: Any) -> Any:
        raise NotImplementedError


class IntType(ColumnType):
    def _coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if value.is_integer():
                return int(value)
            raise TypeMismatchError(f"cannot store non-integral {value!r} as INT")
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise TypeMismatchError(f"cannot parse {value!r} as INT") from None
        raise TypeMismatchError(f"cannot store {type(value).__name__} as INT")


class RealType(ColumnType):
    def _coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            result = float(value)
            if math.isnan(result):
                raise TypeMismatchError("NaN is not storable as REAL; use NULL")
            return result
        if isinstance(value, str):
            try:
                return self._coerce(float(value))
            except ValueError:
                raise TypeMismatchError(f"cannot parse {value!r} as REAL") from None
        raise TypeMismatchError(f"cannot store {type(value).__name__} as REAL")


class TextType(ColumnType):
    def _coerce(self, value: Any) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        raise TypeMismatchError(f"cannot store {type(value).__name__} as TEXT")


class BoolType(ColumnType):
    def _coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
            raise TypeMismatchError(f"cannot parse {value!r} as BOOL")
        raise TypeMismatchError(f"cannot store {type(value).__name__} as BOOL")


class TimestampType(ColumnType):
    """Timestamps are stored as float seconds (application time)."""

    def _coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot store BOOL as TIMESTAMP")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise TypeMismatchError(
                    f"cannot parse {value!r} as TIMESTAMP"
                ) from None
        raise TypeMismatchError(f"cannot store {type(value).__name__} as TIMESTAMP")


class JsonType(ColumnType):
    """Arbitrary JSON-serializable payloads (used by queue tables)."""

    def _coerce(self, value: Any) -> Any:
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            raise TypeMismatchError(
                f"value of type {type(value).__name__} is not JSON-serializable"
            ) from None
        return value


INT = IntType("INT")
REAL = RealType("REAL")
TEXT = TextType("TEXT")
BOOL = BoolType("BOOL")
TIMESTAMP = TimestampType("TIMESTAMP")
JSON = JsonType("JSON")

_TYPES_BY_NAME = {
    "INT": INT,
    "INTEGER": INT,
    "BIGINT": INT,
    "REAL": REAL,
    "FLOAT": REAL,
    "DOUBLE": REAL,
    "TEXT": TEXT,
    "VARCHAR": TEXT,
    "STRING": TEXT,
    "BOOL": BOOL,
    "BOOLEAN": BOOL,
    "TIMESTAMP": TIMESTAMP,
    "JSON": JSON,
}


def type_by_name(name: str) -> ColumnType:
    """Resolve a SQL type name (case-insensitive) to its singleton."""
    try:
        return _TYPES_BY_NAME[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown column type {name!r}") from None


def compare_values(left: Any, right: Any) -> int:
    """Three-way comparison used by ordered indexes and ORDER BY.

    NULL sorts before every non-NULL value (SQL "NULLS FIRST").
    Mixed numeric types compare numerically; any other cross-type
    comparison falls back to comparing type names so sorting is total.
    """
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if type(left) is type(right):
        try:
            return (left > right) - (left < right)
        except TypeError:
            pass
    left_key, right_key = type(left).__name__, type(right).__name__
    return (left_key > right_key) - (left_key < right_key)
