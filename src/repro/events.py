"""The event envelope used across every subsystem.

The tutorial's central object is the *event*: a timestamped, typed
observation about the environment.  Events flow from capture sources
through queues, rules, continuous queries, expectation models, and
finally — if they survive VIRT filtering — to responders.

An :class:`Event` is immutable.  Transformations (enrichment,
correlation) produce new events via :meth:`Event.derive`, preserving
provenance through ``source`` and ``causes``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

_event_ids = itertools.count(1)


def _next_event_id() -> int:
    return next(_event_ids)


#: Ordinary observation — the overwhelming majority of traffic.
KIND_DATA = "data"
#: Watermark punctuation (CEDR-style): "no further data events with
#: ``timestamp < payload['watermark']`` will arrive on this channel".
#: Carries no observation; operators advance event time and forward it.
KIND_PUNCTUATION = "punctuation"
#: Compensation: retracts a previously emitted event whose payload this
#: event repeats (window pane, aggregate summary, view group result).
KIND_RETRACTION = "retraction"

_KINDS = frozenset((KIND_DATA, KIND_PUNCTUATION, KIND_RETRACTION))

#: Event type of watermark punctuation built by :func:`punctuation`.
PUNCTUATION_EVENT_TYPE = "stream.punctuation"


@dataclass(frozen=True)
class Event:
    """A single immutable event.

    Attributes:
        event_type: Dotted category name, e.g. ``"orders.insert"`` or
            ``"sensor.reading"``.  Rule and subscription filters match
            on it with exact or prefix semantics.
        timestamp: Occurrence time in seconds (application time, not
            arrival time).
        payload: Attribute mapping carrying the observation itself.
        event_id: Process-unique monotonically increasing id.
        source: Name of the component that produced the event
            (``"trigger:orders"``, ``"journal"``, ``"cq:vwap"`` ...).
        causes: Ids of the events this event was derived from; empty
            for primitive events.  Gives full provenance for audit.
        trace_id: End-to-end tracking id (see :mod:`repro.obs.trace`).
            Stamped at the capture boundary and inherited by every
            derived/correlated event, so one observation's full path
            through rules, queues, propagation, and delivery can be
            reconstructed.  ``None`` for events nothing is tracking.
        kind: Message kind — ``"data"`` (default), ``"punctuation"``
            (watermark control message), or ``"retraction"``
            (compensation for a previously emitted result).  Control
            and compensation messages ride the same machinery as data
            (streams, queues, pub/sub, delivery) exactly like the DLQ
            tombstones do; kind-aware consumers route on this field.
    """

    event_type: str
    timestamp: float
    payload: Mapping[str, Any] = field(default_factory=dict)
    event_id: int = field(default_factory=_next_event_id)
    source: str = ""
    causes: tuple[int, ...] = ()
    trace_id: str | None = None
    kind: str = KIND_DATA

    def __post_init__(self) -> None:
        if not self.event_type:
            raise ValueError("event_type must be non-empty")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        # Freeze the payload so the event is safely shareable.
        object.__setattr__(self, "payload", dict(self.payload))

    @property
    def is_data(self) -> bool:
        return self.kind == KIND_DATA

    @property
    def is_punctuation(self) -> bool:
        return self.kind == KIND_PUNCTUATION

    @property
    def is_retraction(self) -> bool:
        return self.kind == KIND_RETRACTION

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Return ``payload[key]`` or ``default`` when absent."""
        return self.payload.get(key, default)

    def matches_type(self, pattern: str) -> bool:
        """True when ``pattern`` equals the type, is the ``*`` wildcard,
        or is a dotted prefix (``"orders.*"`` matches ``"orders.insert"``).
        """
        if pattern == "*" or pattern == self.event_type:
            return True
        if pattern.endswith(".*"):
            return self.event_type.startswith(pattern[:-1])
        return False

    def derive(
        self,
        event_type: str,
        payload: Mapping[str, Any] | None = None,
        *,
        timestamp: float | None = None,
        source: str = "",
    ) -> "Event":
        """Create a new event caused by this one.

        The derived event inherits this event's timestamp unless an
        explicit one is supplied, and records this event's id in its
        ``causes`` for provenance.  ``kind`` is inherited: a transform
        applied to a retraction yields a retraction of the transformed
        result (the compensation stays a compensation).
        """
        return Event(
            event_type=event_type,
            timestamp=self.timestamp if timestamp is None else timestamp,
            payload=self.payload if payload is None else payload,
            source=source,
            causes=(self.event_id,),
            trace_id=self.trace_id,
            kind=self.kind,
        )

    def with_payload(self, **updates: Any) -> "Event":
        """Return a copy of this event with payload keys added/replaced."""
        merged = dict(self.payload)
        merged.update(updates)
        return Event(
            event_type=self.event_type,
            timestamp=self.timestamp,
            payload=merged,
            source=self.source,
            causes=self.causes,
            trace_id=self.trace_id,
            kind=self.kind,
        )

    def to_retraction(self, *, source: str = "") -> "Event":
        """The compensation for this event: same type and payload,
        ``kind="retraction"``, caused by this event."""
        return Event(
            event_type=self.event_type,
            timestamp=self.timestamp,
            payload=self.payload,
            source=source or self.source,
            causes=(self.event_id,),
            trace_id=self.trace_id,
            kind=KIND_RETRACTION,
        )


def punctuation(
    watermark: float, *, source: str = "", trace_id: str | None = None
) -> Event:
    """Build a watermark punctuation event.

    The promise it carries: the producer will emit no further data
    events with ``timestamp < watermark`` on this channel.  Downstream
    operators advance event time (closing windows, pruning join state)
    without having to see data, then forward it.
    """
    return Event(
        event_type=PUNCTUATION_EVENT_TYPE,
        timestamp=watermark,
        payload={"watermark": watermark},
        source=source,
        trace_id=trace_id,
        kind=KIND_PUNCTUATION,
    )


def correlate(
    events: Iterable[Event],
    event_type: str,
    payload: Mapping[str, Any],
    *,
    timestamp: float | None = None,
    source: str = "",
) -> Event:
    """Build a composite event caused by several input events.

    Used by the CEP pattern matcher: a matched SEQ(A, B, C) produces one
    composite event whose ``causes`` are the three constituent ids and
    whose timestamp defaults to the latest constituent timestamp.
    """
    events = list(events)
    if not events:
        raise ValueError("correlate requires at least one input event")
    if timestamp is None:
        timestamp = max(event.timestamp for event in events)
    # A composite inherits the first tracked constituent's trace id —
    # the pattern's anchor — so end-to-end tracking survives correlation.
    trace_id = next(
        (event.trace_id for event in events if event.trace_id is not None),
        None,
    )
    return Event(
        event_type=event_type,
        timestamp=timestamp,
        payload=payload,
        source=source,
        causes=tuple(event.event_id for event in events),
        trace_id=trace_id,
    )
