"""Formal specification of event-driven applications (paper §2.1.d–f).

The tutorial's Part 1 calls for *formal specification* of event-driven
applications: what is monitored, what conditions matter, who must be
told, and what guarantees the wiring must satisfy.  This module gives
that a concrete, checkable form: an :class:`ApplicationSpec` declares
the intent, and :meth:`ApplicationSpec.validate` audits a live
:class:`repro.core.application.EventDrivenApplication` against it,
returning precise violations instead of letting mis-wired monitoring
fail silently in production.

Checks cover the classic silent-failure modes of event systems:

* a table declared monitored with no capture source attached;
* a declared critical condition with no rule/detector implementing it;
* an alert category with **no** authorized+able responder — the
  ChemSecure requirement inverted into a static check;
* a recipient expected to hear about a category whose VIRT filter
  threshold exceeds the maximum score that category's events can reach
  (it would suppress everything);
* rules that reference event attributes no declared event type carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.application import EventDrivenApplication
from repro.errors import ReproError


class SpecificationError(ReproError):
    """Raised by :meth:`ApplicationSpec.enforce` when validation fails."""


@dataclass
class Violation:
    """One specification breach."""

    kind: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class EventTypeSpec:
    """A declared event type and the attributes it carries."""

    event_type: str
    attributes: set[str] = field(default_factory=set)


@dataclass
class ConditionSpec:
    """A critical condition the application must watch for."""

    name: str
    # Satisfied by a rule with this id, or a detector with this name.
    implemented_by_rule: str | None = None
    implemented_by_detector: str | None = None


@dataclass
class CategorySpec:
    """An alert category and what handling it requires."""

    category: str
    required_capabilities: tuple[str, ...] = ()
    recipients: tuple[str, ...] = ()


@dataclass
class ApplicationSpec:
    """The declared intent of one event-driven application."""

    name: str
    monitored_tables: tuple[str, ...] = ()
    event_types: tuple[EventTypeSpec, ...] = ()
    conditions: tuple[ConditionSpec, ...] = ()
    categories: tuple[CategorySpec, ...] = ()

    # -- validation ---------------------------------------------------------

    def validate(self, app: EventDrivenApplication) -> list[Violation]:
        """Audit ``app`` against this spec; returns all violations."""
        violations: list[Violation] = []
        violations.extend(self._check_captures(app))
        violations.extend(self._check_conditions(app))
        violations.extend(self._check_categories(app))
        violations.extend(self._check_rule_attributes(app))
        return violations

    def enforce(self, app: EventDrivenApplication) -> None:
        """Raise :class:`SpecificationError` listing any violations."""
        violations = self.validate(app)
        if violations:
            raise SpecificationError(
                f"application {self.name!r} violates its specification:\n"
                + "\n".join(f"  - {violation}" for violation in violations)
            )

    def _check_captures(self, app: EventDrivenApplication) -> list[Violation]:
        violations = []
        captured_tables: set[str] = set()
        for source in app._captures:
            tables = getattr(source, "tables", None)
            if tables:
                captured_tables.update(tables)
        for table in self.monitored_tables:
            if table.lower() not in captured_tables:
                violations.append(Violation(
                    "uncaptured-table",
                    table,
                    "declared monitored but no trigger/journal capture is "
                    "attached; changes would go unobserved",
                ))
        return violations

    def _check_conditions(self, app: EventDrivenApplication) -> list[Violation]:
        violations = []
        rule_ids = {rule.rule_id for rule in app.rules.rules()}
        for condition in self.conditions:
            satisfied = False
            if condition.implemented_by_rule is not None:
                satisfied = condition.implemented_by_rule in rule_ids
            if not satisfied and condition.implemented_by_detector is not None:
                satisfied = condition.implemented_by_detector in app.detectors
            if not satisfied:
                violations.append(Violation(
                    "unimplemented-condition",
                    condition.name,
                    "no registered rule or detector implements this "
                    "declared critical condition",
                ))
        return violations

    def _check_categories(self, app: EventDrivenApplication) -> list[Violation]:
        violations = []
        for category in self.categories:
            qualified = [
                responder
                for responder in app.responders._responders.values()
                if responder.is_authorized(category.category)
                and responder.is_able(category.required_capabilities)
            ]
            if not qualified:
                violations.append(Violation(
                    "unanswerable-category",
                    category.category,
                    "no registered responder is authorized and able "
                    f"(needs {list(category.required_capabilities)}); "
                    "critical alerts would have nobody to go to",
                ))
            for recipient in category.recipients:
                if recipient not in app.virt_filters:
                    violations.append(Violation(
                        "missing-recipient",
                        recipient,
                        f"declared for category {category.category!r} but "
                        "has no VIRT filter registered",
                    ))
        return violations

    def _check_rule_attributes(
        self, app: EventDrivenApplication
    ) -> list[Violation]:
        if not self.event_types:
            return []
        violations = []
        known_attributes: set[str] = set()
        for spec in self.event_types:
            known_attributes.update(spec.attributes)
        # Attributes the platform injects on every event context.
        known_attributes.update({"event_type", "timestamp"})
        for rule in app.rules.rules():
            unknown = rule.condition.referenced_columns() - known_attributes
            if unknown:
                violations.append(Violation(
                    "unknown-attributes",
                    rule.rule_id,
                    f"condition references {sorted(unknown)} which no "
                    "declared event type carries (would evaluate as NULL "
                    "and never match)",
                ))
        return violations
