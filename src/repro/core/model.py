"""Expectation models: formalized "models of environment behavior".

Each model answers two questions about an observation:

* :meth:`ExpectationModel.expect` — what do I believe the value should
  be right now?
* :meth:`ExpectationModel.score` — how far is this observation from my
  expectation, in comparable units (roughly standard deviations /
  surprise)?

and learns with :meth:`observe`.  Deviation *policy* (thresholds, when
to update) lives in :mod:`repro.core.deviation`, keeping models pure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Hashable

from repro.cq.analytics import StreamStatistics
from repro.errors import ModelError


@dataclass
class Expectation:
    """What the model expects: a central value and a tolerance band."""

    value: float | None
    low: float | None = None
    high: float | None = None
    confidence: float = 1.0

    def contains(self, observation: float) -> bool:
        if self.low is not None and observation < self.low:
            return False
        if self.high is not None and observation > self.high:
            return False
        return True


class ExpectationModel:
    """Interface for all expectation models."""

    def expect(self, context: dict[str, Any] | None = None) -> Expectation:
        """Current expectation (context may carry e.g. a timestamp)."""
        raise NotImplementedError

    def score(
        self, value: float, context: dict[str, Any] | None = None
    ) -> float:
        """Deviation magnitude of ``value`` (0 = exactly as expected)."""
        raise NotImplementedError

    def observe(
        self, value: float, context: dict[str, Any] | None = None
    ) -> None:
        """Absorb an observation (models that learn update state)."""

    @property
    def ready(self) -> bool:
        """False while the model is still warming up (scores are 0)."""
        return True


class RangeModel(ExpectationModel):
    """Static tolerance band: "usage should stay between low and high".

    Score is 0 inside the band and grows linearly with the distance
    outside it, normalized by the band width — the simplest
    "specifying expected behavior by models" from §2.1.f.
    """

    def __init__(self, low: float, high: float) -> None:
        if low >= high:
            raise ModelError("RangeModel requires low < high")
        self.low = low
        self.high = high
        self._width = high - low

    def expect(self, context: dict[str, Any] | None = None) -> Expectation:
        return Expectation(
            value=(self.low + self.high) / 2, low=self.low, high=self.high
        )

    def score(self, value: float, context: dict[str, Any] | None = None) -> float:
        if value < self.low:
            return (self.low - value) / self._width
        if value > self.high:
            return (value - self.high) / self._width
        return 0.0


class EwmaModel(ExpectationModel):
    """Adaptive baseline: expectation is the EWMA, score is the z-score
    against the running standard deviation."""

    def __init__(self, *, alpha: float = 0.1, warmup: int = 10) -> None:
        self.stats = StreamStatistics(ewma_alpha=alpha)
        self.warmup = warmup

    @property
    def ready(self) -> bool:
        return self.stats.count >= self.warmup

    def expect(self, context: dict[str, Any] | None = None) -> Expectation:
        if self.stats.ewma is None:
            return Expectation(value=None, confidence=0.0)
        spread = 3 * self.stats.stddev
        return Expectation(
            value=self.stats.ewma,
            low=self.stats.ewma - spread,
            high=self.stats.ewma + spread,
            confidence=min(1.0, self.stats.count / max(1, self.warmup)),
        )

    def score(self, value: float, context: dict[str, Any] | None = None) -> float:
        if not self.ready:
            return 0.0
        deviation = abs(value - self.stats.ewma)
        if self.stats.stddev == 0.0:
            # A constant history: any departure at all is maximally
            # surprising (a zero-variance baseline must not mute alarms).
            return 0.0 if deviation == 0.0 else float("inf")
        return deviation / self.stats.stddev

    def observe(self, value: float, context: dict[str, Any] | None = None) -> None:
        self.stats.add(value)


class SeasonalProfileModel(ExpectationModel):
    """Time-of-period profile: one baseline per bin of a repeating
    period (hour-of-day, day-of-week...).

    ``context["timestamp"]`` selects the bin.  The utility use case
    (§2.2.e.ii): usage at 3am is compared with *3am usage*, not the
    all-day mean, so a nightly spike is a deviation even when it would
    be normal at noon.
    """

    def __init__(self, *, period: float, bins: int, warmup_per_bin: int = 5) -> None:
        if period <= 0 or bins <= 0:
            raise ModelError("period and bins must be positive")
        self.period = period
        self.bins = bins
        self.warmup_per_bin = warmup_per_bin
        self._profiles = [StreamStatistics() for _ in range(bins)]

    def _bin(self, context: dict[str, Any] | None) -> int:
        if context is None or "timestamp" not in context:
            raise ModelError("SeasonalProfileModel needs context['timestamp']")
        phase = (context["timestamp"] % self.period) / self.period
        return min(self.bins - 1, int(phase * self.bins))

    @property
    def ready(self) -> bool:
        return any(
            profile.count >= self.warmup_per_bin for profile in self._profiles
        )

    def expect(self, context: dict[str, Any] | None = None) -> Expectation:
        profile = self._profiles[self._bin(context)]
        if profile.count == 0:
            return Expectation(value=None, confidence=0.0)
        spread = 3 * profile.stddev
        return Expectation(
            value=profile.mean,
            low=profile.mean - spread,
            high=profile.mean + spread,
            confidence=min(1.0, profile.count / max(1, self.warmup_per_bin)),
        )

    def score(self, value: float, context: dict[str, Any] | None = None) -> float:
        profile = self._profiles[self._bin(context)]
        if profile.count < self.warmup_per_bin:
            return 0.0
        deviation = abs(value - profile.mean)
        if profile.stddev == 0.0:
            return 0.0 if deviation == 0.0 else float("inf")
        return deviation / profile.stddev

    def observe(self, value: float, context: dict[str, Any] | None = None) -> None:
        self._profiles[self._bin(context)].add(value)


class MarkovStateModel(ExpectationModel):
    """Discrete-state expectation: how surprising is this transition?

    Learns first-order transition counts with Laplace smoothing; the
    score of observing state ``s`` after state ``p`` is the surprisal
    ``-log2 P(s | p)`` scaled so "as expected" ≈ 0 and rare transitions
    grow without bound.  Suits workflows and device-status streams
    where values are symbolic, not numeric.
    """

    def __init__(self, *, smoothing: float = 1.0, warmup: int = 20) -> None:
        self.smoothing = smoothing
        self.warmup = warmup
        self._counts: dict[Hashable, dict[Hashable, int]] = {}
        self._states: set[Hashable] = set()
        self._previous: Hashable | None = None
        self.observations = 0

    @property
    def ready(self) -> bool:
        return self.observations >= self.warmup

    def transition_probability(self, prev: Hashable, state: Hashable) -> float:
        outgoing = self._counts.get(prev, {})
        total = sum(outgoing.values())
        vocabulary = max(1, len(self._states))
        return (outgoing.get(state, 0) + self.smoothing) / (
            total + self.smoothing * vocabulary
        )

    def expect(self, context: dict[str, Any] | None = None) -> Expectation:
        if self._previous is None or self._previous not in self._counts:
            return Expectation(value=None, confidence=0.0)
        outgoing = self._counts[self._previous]
        if not outgoing:
            return Expectation(value=None, confidence=0.0)
        likely = max(outgoing, key=outgoing.get)
        return Expectation(
            value=None,
            confidence=self.transition_probability(self._previous, likely),
        )

    def score(self, value: Hashable, context: dict[str, Any] | None = None) -> float:
        if not self.ready or self._previous is None:
            return 0.0
        probability = self.transition_probability(self._previous, value)
        return -math.log2(probability)

    def observe(self, value: Hashable, context: dict[str, Any] | None = None) -> None:
        self._states.add(value)
        if self._previous is not None:
            self._counts.setdefault(self._previous, {})
            self._counts[self._previous][value] = (
                self._counts[self._previous].get(value, 0) + 1
            )
        self._previous = value
        self.observations += 1
