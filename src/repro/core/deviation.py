"""Deviation detection: reality vs expectation (§2.1.f).

A :class:`DeviationDetector` binds an expectation-model *factory* to a
numeric (or symbolic, for Markov models) field of an event stream.
Models are instantiated per entity (``key_field``), so each meter /
symbol / sensor has its own expectations.

Model updating (§2.1.f "updating models") is a policy choice:

* ``UpdatePolicy.ALWAYS`` — every observation trains the model, so the
  baseline adapts even through anomalous episodes (drift-following).
* ``UpdatePolicy.WHEN_NORMAL`` — anomalous observations are excluded
  from training, keeping the baseline clean but risking staleness if
  the world genuinely shifts.
* ``UpdatePolicy.NEVER`` — frozen models (static specifications).

Detected deviations are emitted as ``deviation.<name>`` events carrying
the score, the expectation band, and the offending observation.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Hashable

from repro.cq.stream import Operator, Stream
from repro.core.model import ExpectationModel
from repro.errors import ModelError
from repro.events import Event

ModelFactory = Callable[[], ExpectationModel]


class UpdatePolicy(Enum):
    ALWAYS = "always"
    WHEN_NORMAL = "when_normal"
    NEVER = "never"


class DeviationDetector(Operator):
    """Stream operator: observations in, deviation events out."""

    def __init__(
        self,
        upstream: Stream,
        *,
        name: str,
        field: str,
        model_factory: ModelFactory,
        threshold: float,
        key_field: str | None = None,
        update_policy: UpdatePolicy = UpdatePolicy.ALWAYS,
    ) -> None:
        super().__init__(f"deviation({name})", upstream)
        if threshold <= 0:
            raise ModelError("deviation threshold must be positive")
        self.detector_name = name
        self.field = field
        self.model_factory = model_factory
        self.threshold = threshold
        self.key_field = key_field
        self.update_policy = update_policy
        self._models: dict[Hashable, ExpectationModel] = {}
        self.stats = {"observations": 0, "deviations": 0, "skipped": 0}

    def model_for(self, key: Hashable = None) -> ExpectationModel:
        model = self._models.get(key)
        if model is None:
            model = self.model_factory()
            self._models[key] = model
        return model

    @property
    def entities(self) -> int:
        return len(self._models)

    def process(self, event: Event) -> None:
        value = event.get(self.field)
        if value is None:
            self.stats["skipped"] += 1
            return
        key = event.get(self.key_field) if self.key_field else None
        model = self.model_for(key)
        context = {"timestamp": event.timestamp, **event.payload}
        self.stats["observations"] += 1
        score = model.score(value, context)
        deviated = model.ready and score >= self.threshold
        if deviated:
            self.stats["deviations"] += 1
            expectation = model.expect(context)
            self.emit(
                event.derive(
                    f"deviation.{self.detector_name}",
                    {
                        "detector": self.detector_name,
                        "key": key,
                        "field": self.field,
                        "observed": value,
                        "expected": expectation.value,
                        "expected_low": expectation.low,
                        "expected_high": expectation.high,
                        "score": score,
                        "threshold": self.threshold,
                        **{
                            k: v
                            for k, v in event.payload.items()
                            if k not in ("score", "observed")
                        },
                    },
                    source=self.name,
                )
            )
        if self.update_policy is UpdatePolicy.ALWAYS or (
            self.update_policy is UpdatePolicy.WHEN_NORMAL and not deviated
        ):
            model.observe(value, context)
