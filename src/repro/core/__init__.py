"""The tutorial's conceptual core: sense-and-respond systems.

"Systems and individuals have models (expectations) of behaviors of
their environments, and applications notify them when reality — as
determined by measurements and estimates — deviates from their
expectations."  (§1)

* :mod:`repro.core.model` — expectation models (static ranges, EWMA,
  seasonal profiles, Markov state models).
* :mod:`repro.core.deviation` — reality-vs-expectation detection with
  model-updating policies ("management by exception", §2.1.f).
* :mod:`repro.core.virt` — VIRT (Valuable Information at the Right
  Time) scoring and filtering against information overload.
* :mod:`repro.core.metrics` — false-positive / false-negative
  accounting (the paper's keywords: "errors, false positives, false
  negatives, statistics").
* :mod:`repro.core.alerting` / :mod:`repro.core.responders` — deliver
  to those *authorized, available and able* (§2.2.e.iii–iv).
* :mod:`repro.core.application` — the assembled event-driven
  application.
"""

from repro.core.alerting import Alert, AlertManager
from repro.core.application import EventDrivenApplication
from repro.core.bam import BusinessActivityMonitor, Kpi, KpiReading
from repro.core.deviation import DeviationDetector, UpdatePolicy
from repro.core.metrics import ConfusionTracker, EpisodeTracker
from repro.core.model import (
    EwmaModel,
    Expectation,
    ExpectationModel,
    MarkovStateModel,
    RangeModel,
    SeasonalProfileModel,
)
from repro.core.responders import Responder, ResponderRegistry
from repro.core.spec import (
    ApplicationSpec,
    CategorySpec,
    ConditionSpec,
    EventTypeSpec,
    SpecificationError,
    Violation,
)
from repro.core.virt import RecipientProfile, VirtFilter, VirtScorer

__all__ = [
    "ExpectationModel",
    "Expectation",
    "RangeModel",
    "EwmaModel",
    "SeasonalProfileModel",
    "MarkovStateModel",
    "DeviationDetector",
    "UpdatePolicy",
    "VirtScorer",
    "VirtFilter",
    "RecipientProfile",
    "ConfusionTracker",
    "EpisodeTracker",
    "Alert",
    "AlertManager",
    "Responder",
    "ResponderRegistry",
    "EventDrivenApplication",
    "ApplicationSpec",
    "EventTypeSpec",
    "ConditionSpec",
    "CategorySpec",
    "SpecificationError",
    "Violation",
    "BusinessActivityMonitor",
    "Kpi",
    "KpiReading",
]
