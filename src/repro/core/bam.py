"""Business Activity Monitoring (BAM) over the event stream.

The tutorial's enterprise-stack inventory (§1) includes "Business
Process Management and Business Application Monitoring tools".  This
module provides the monitoring half: **KPIs** defined as windowed
aggregates over event streams, each with a target band, evaluated
continuously and summarized in a dashboard snapshot.

A KPI differs from a deviation detector: the detector learns what
normal is, while a KPI is *managed* — the business declares the target
band, and the interesting states are ``ok`` / ``warning`` / ``breach``
against that declaration (management by exception over business
metrics rather than sensor readings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cq.aggregate import AggregateFunction, WindowAggregate
from repro.cq.stream import Stream
from repro.cq.window import TumblingWindow
from repro.errors import StreamError
from repro.events import Event

KPI_STATUS_OK = "ok"
KPI_STATUS_WARNING = "warning"
KPI_STATUS_BREACH = "breach"


@dataclass
class KpiReading:
    """One evaluated window of a KPI."""

    name: str
    value: float | None
    status: str
    window_start: float
    window_end: float
    target_low: float | None
    target_high: float | None


@dataclass
class Kpi:
    """A declared business metric.

    ``field``/``aggregate`` define the measurement per window;
    ``target_low``/``target_high`` the acceptable band; ``warning_band``
    the fraction of the band width near the edges that counts as
    warning (early signal before breach).
    """

    name: str
    field: str | None
    aggregate: Callable[[], AggregateFunction]
    window: float
    target_low: float | None = None
    target_high: float | None = None
    warning_band: float = 0.1
    history: list[KpiReading] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.target_low is None and self.target_high is None:
            raise StreamError(f"KPI {self.name!r} declares no target band")
        if (
            self.target_low is not None
            and self.target_high is not None
            and self.target_low >= self.target_high
        ):
            raise StreamError(f"KPI {self.name!r} has an empty target band")

    def classify(self, value: float | None) -> str:
        if value is None:
            return KPI_STATUS_BREACH  # no data is itself an exception
        low, high = self.target_low, self.target_high
        if low is not None and value < low:
            return KPI_STATUS_BREACH
        if high is not None and value > high:
            return KPI_STATUS_BREACH
        if low is not None and high is not None:
            margin = (high - low) * self.warning_band
            if value < low + margin or value > high - margin:
                return KPI_STATUS_WARNING
        return KPI_STATUS_OK

    @property
    def current(self) -> KpiReading | None:
        return self.history[-1] if self.history else None


class BusinessActivityMonitor:
    """Evaluates a set of KPIs over one event stream."""

    def __init__(self, source: Stream | None = None, *, name: str = "bam") -> None:
        self.name = name
        self.source = source or Stream(f"{name}.input")
        self._kpis: dict[str, Kpi] = {}
        self._windows: list[TumblingWindow] = []
        self._status_listeners: list[Callable[[Kpi, KpiReading], None]] = []

    def on_status_change(
        self, listener: Callable[[Kpi, KpiReading], None]
    ) -> None:
        """Called whenever a KPI's status differs from its previous
        window (ok→warning, warning→breach, recovery...)."""
        self._status_listeners.append(listener)

    def add_kpi(
        self,
        name: str,
        *,
        field: str | None,
        aggregate: Callable[[], AggregateFunction],
        window: float,
        target_low: float | None = None,
        target_high: float | None = None,
        warning_band: float = 0.1,
        event_filter: str | None = None,
    ) -> Kpi:
        if name in self._kpis:
            raise StreamError(f"KPI {name!r} already defined")
        kpi = Kpi(
            name=name,
            field=field,
            aggregate=aggregate,
            window=window,
            target_low=target_low,
            target_high=target_high,
            warning_band=warning_band,
        )
        self._kpis[name] = kpi

        upstream: Stream = self.source
        if event_filter is not None:
            from repro.cq.operators import FilterOperator

            upstream = FilterOperator(
                upstream, event_filter, name=f"{name}.filter"
            )
        window_operator = TumblingWindow(
            upstream, window, name=f"{name}.window"
        )
        self._windows.append(window_operator)
        aggregate_operator = WindowAggregate(
            window_operator,
            f"kpi.{name}",
            {"value": (field, aggregate)},
            name=f"{name}.aggregate",
        )
        aggregate_operator.subscribe(
            lambda event, kpi=kpi: self._record(kpi, event)
        )
        return kpi

    def _record(self, kpi: Kpi, event: Event) -> None:
        value = event["value"]
        reading = KpiReading(
            name=kpi.name,
            value=value,
            status=kpi.classify(value),
            window_start=event["window_start"],
            window_end=event["window_end"],
            target_low=kpi.target_low,
            target_high=kpi.target_high,
        )
        previous = kpi.current
        kpi.history.append(reading)
        if previous is None or previous.status != reading.status:
            for listener in self._status_listeners:
                listener(kpi, reading)

    def push(self, event: Event) -> None:
        self.source.push(event)

    def flush(self) -> None:
        for window_operator in self._windows:
            window_operator.flush()

    def kpi(self, name: str) -> Kpi:
        try:
            return self._kpis[name]
        except KeyError:
            raise StreamError(f"KPI {name!r} is not defined") from None

    def dashboard(self) -> list[dict[str, Any]]:
        """Current status snapshot, one row per KPI (breaches first)."""
        order = {KPI_STATUS_BREACH: 0, KPI_STATUS_WARNING: 1, KPI_STATUS_OK: 2}
        rows = []
        for kpi in self._kpis.values():
            current = kpi.current
            rows.append({
                "kpi": kpi.name,
                "value": current.value if current else None,
                "status": current.status if current else "no-data",
                "target": (kpi.target_low, kpi.target_high),
                "windows_observed": len(kpi.history),
                "breaches": sum(
                    1 for r in kpi.history if r.status == KPI_STATUS_BREACH
                ),
            })
        rows.sort(key=lambda row: order.get(row["status"], 3))
        return rows
