"""Error accounting: false positives, false negatives, statistics.

The paper's keyword list ("errors, false positives, false negatives,
statistics") reflects that a sense-and-respond system is a detector and
must be evaluated like one.  Two trackers:

* :class:`ConfusionTracker` — per-decision bookkeeping when each item
  has a ground-truth label.
* :class:`EpisodeTracker` — time-based matching of alerts against
  ground-truth critical *episodes* (an alert within the response window
  of an episode is a true positive; uncovered episodes are the false
  negatives that matter operationally).
"""

from __future__ import annotations

from dataclasses import dataclass


class ConfusionTracker:
    """Classic TP/FP/FN/TN counts with derived rates."""

    def __init__(self) -> None:
        self.tp = 0
        self.fp = 0
        self.fn = 0
        self.tn = 0

    def record(self, *, predicted: bool, actual: bool) -> None:
        if predicted and actual:
            self.tp += 1
        elif predicted and not actual:
            self.fp += 1
        elif not predicted and actual:
            self.fn += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        predicted = self.tp + self.fp
        return self.tp / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        actual = self.tp + self.fn
        return self.tp / actual if actual else 0.0

    @property
    def false_positive_rate(self) -> float:
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    @property
    def false_negative_rate(self) -> float:
        positives = self.tp + self.fn
        return self.fn / positives if positives else 0.0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def summary(self) -> dict[str, float]:
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "precision": self.precision,
            "recall": self.recall,
            "fpr": self.false_positive_rate,
            "fnr": self.false_negative_rate,
            "f1": self.f1,
        }


@dataclass
class EpisodeResult:
    episodes: int
    detected: int
    alerts: int
    true_alerts: int
    false_alerts: int
    mean_delay: float | None

    @property
    def recall(self) -> float:
        return self.detected / self.episodes if self.episodes else 0.0

    @property
    def precision(self) -> float:
        return self.true_alerts / self.alerts if self.alerts else 0.0

    @property
    def false_negative_rate(self) -> float:
        return 1.0 - self.recall


class EpisodeTracker:
    """Match alert times against ground-truth episode times.

    An episode at time ``t`` is *detected* by any alert in
    ``[t, t + window]``; alerts matching no episode are false alarms.
    """

    def __init__(self, episodes: list[float], *, window: float) -> None:
        self.episodes = sorted(episodes)
        self.window = window
        self.alert_times: list[float] = []

    def record_alert(self, timestamp: float) -> None:
        self.alert_times.append(timestamp)

    def result(self) -> EpisodeResult:
        detected: set[float] = set()
        true_alerts = 0
        delays: list[float] = []
        for alert in sorted(self.alert_times):
            matched = None
            for episode in self.episodes:
                if episode <= alert <= episode + self.window:
                    matched = episode
                    break
                if episode > alert:
                    break
            if matched is None:
                continue
            true_alerts += 1
            if matched not in detected:
                detected.add(matched)
                delays.append(alert - matched)
        alerts = len(self.alert_times)
        return EpisodeResult(
            episodes=len(self.episodes),
            detected=len(detected),
            alerts=alerts,
            true_alerts=true_alerts,
            false_alerts=alerts - true_alerts,
            mean_delay=sum(delays) / len(delays) if delays else None,
        )
