"""VIRT — Valuable Information at the Right Time (§1).

"A major problem today is information overload; this problem can be
solved by identifying what information is critical […] and filtering
out non-critical data."

The :class:`VirtScorer` computes a value-of-information score per
(event, recipient) from four components:

* **surprise** — how far reality deviates from expectation (the
  deviation score, squashed into [0, 1)).  "Valuable information is
  that which supports or contradicts current expectations…"
* **actionability** — "…or that which requires an action on the part
  of the receiver": the recipient's declared weight for this event
  category.
* **relevance** — attribute match between the event and the
  recipient's scope (region, asset class, …).
* **timeliness** — exponential decay with the event's age; stale news
  is worth little ("at the Right Time").

The :class:`VirtFilter` forwards only events scoring at or above a
threshold, and keeps delivered/suppressed counts — EXP-9 sweeps the
threshold to trace the volume-reduction vs false-negative frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clock import Clock
from repro.events import Event


@dataclass
class RecipientProfile:
    """What one recipient cares about.

    ``interests`` maps event-type patterns to actionability weights in
    [0, 1].  ``scope`` holds attribute values that must be compatible
    with the event for full relevance (e.g. ``{"region": "west"}``).
    """

    name: str
    interests: dict[str, float] = field(default_factory=dict)
    scope: dict[str, Any] = field(default_factory=dict)
    half_life: float = 300.0

    def actionability(self, event_type: str) -> float:
        best = 0.0
        for pattern, weight in self.interests.items():
            if pattern == "*" or pattern == event_type:
                best = max(best, weight)
            elif pattern.endswith(".*") and event_type.startswith(pattern[:-1]):
                best = max(best, weight)
        return best

    def relevance(self, event: Event) -> float:
        if not self.scope:
            return 1.0
        matched = 0
        for attribute, expected in self.scope.items():
            value = event.get(attribute)
            if value is None:
                continue  # Unknown attributes neither match nor clash.
            if value != expected:
                return 0.0  # A scope clash makes the event irrelevant.
            matched += 1
        return 1.0 if matched else 0.5  # No overlap: weakly relevant.


class VirtScorer:
    """Combines surprise, actionability, relevance, timeliness."""

    def __init__(
        self,
        clock: Clock,
        *,
        surprise_scale: float = 3.0,
        weights: tuple[float, float, float] | None = None,
        include_timeliness: bool = True,
    ) -> None:
        """``weights`` are (surprise, actionability, relevance) mixing
        weights; they are normalized.  ``surprise_scale`` is the
        deviation score at which surprise saturates to ~0.63."""
        self.clock = clock
        self.surprise_scale = surprise_scale
        raw = weights or (0.5, 0.3, 0.2)
        total = sum(raw)
        self.weights = tuple(w / total for w in raw)
        self.include_timeliness = include_timeliness

    def surprise(self, event: Event) -> float:
        score = event.get("score")
        if score is None:
            return 0.0
        return 1.0 - math.exp(-abs(float(score)) / self.surprise_scale)

    def score(self, event: Event, recipient: RecipientProfile) -> float:
        surprise = self.surprise(event)
        actionability = recipient.actionability(event.event_type)
        relevance = recipient.relevance(event)
        w_s, w_a, w_r = self.weights
        base = w_s * surprise + w_a * actionability + w_r * relevance
        if not self.include_timeliness:
            return base
        age = max(0.0, self.clock.now() - event.timestamp)
        timeliness = math.exp(-age * math.log(2) / recipient.half_life)
        return base * timeliness


class VirtFilter:
    """Threshold gate between the event flood and a recipient."""

    def __init__(
        self,
        scorer: VirtScorer,
        recipient: RecipientProfile,
        *,
        threshold: float,
        deliver: Callable[[Event, float], None] | None = None,
    ) -> None:
        self.scorer = scorer
        self.recipient = recipient
        self.threshold = threshold
        self.deliver = deliver
        self.stats = {"seen": 0, "delivered": 0, "suppressed": 0}

    def offer(self, event: Event) -> float | None:
        """Score the event; deliver if it clears the threshold.

        Returns the score when delivered, None when suppressed.
        """
        self.stats["seen"] += 1
        score = self.scorer.score(event, self.recipient)
        if score >= self.threshold:
            self.stats["delivered"] += 1
            if self.deliver is not None:
                self.deliver(event, score)
            return score
        self.stats["suppressed"] += 1
        return None

    @property
    def volume_reduction(self) -> float:
        """seen / delivered — the overload-mitigation factor."""
        if self.stats["delivered"] == 0:
            return float("inf") if self.stats["seen"] else 1.0
        return self.stats["seen"] / self.stats["delivered"]
