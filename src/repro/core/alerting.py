"""Alert management: dedup, escalation, responder dispatch.

Alerts are the system's outward-facing product; this module keeps them
useful under load:

* **Deduplication** — repeated alerts for the same (kind, entity)
  within ``cooldown`` collapse into the first one (its ``repeats``
  counter increments), the standard alarm-fatigue countermeasure.
* **Escalation** — an alert unacknowledged past its level's deadline
  escalates to the next severity and is re-dispatched.
* **Dispatch** — responders come from the
  :class:`repro.core.responders.ResponderRegistry` (authorized,
  available, able); delivery is through a callback per channel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clock import Clock
from repro.core.responders import Responder, ResponderRegistry
from repro.errors import ResponderError
from repro.events import Event

SEVERITIES = ("info", "warning", "critical", "emergency")

Channel = Callable[["Alert", list[Responder]], None]


@dataclass
class Alert:
    """One alert: what happened, to whom it matters, how it is going."""

    alert_id: int
    kind: str
    entity: Any
    severity: str
    event: Event
    created_at: float
    message: str = ""
    acknowledged: bool = False
    acknowledged_by: str | None = None
    repeats: int = 0
    escalations: int = 0
    responders: list[str] = field(default_factory=list)

    def severity_index(self) -> int:
        return SEVERITIES.index(self.severity)


class AlertManager:
    """Turns deviation/rule events into deduplicated, escalating alerts."""

    def __init__(
        self,
        clock: Clock,
        *,
        responders: ResponderRegistry | None = None,
        cooldown: float = 60.0,
        escalation_timeout: float = 300.0,
    ) -> None:
        self.clock = clock
        self.responders = responders
        self.cooldown = cooldown
        self.escalation_timeout = escalation_timeout
        self._alerts: dict[int, Alert] = {}
        self._recent: dict[tuple[str, Any], int] = {}  # (kind, entity) -> alert id
        self._ids = itertools.count(1)
        self._channels: list[Channel] = []
        # Active silences: (kind or "*", entity or None) -> end time.
        self._silences: dict[tuple[str, Any], float] = {}
        self.stats = {
            "raised": 0,
            "deduplicated": 0,
            "escalated": 0,
            "dispatch_failures": 0,
            "silenced": 0,
        }

    def add_channel(self, channel: Channel) -> None:
        """Register a delivery channel (console, pager, test collector)."""
        self._channels.append(channel)

    # -- silences (maintenance windows) --------------------------------------

    def silence(
        self,
        *,
        kind: str = "*",
        entity: Any = None,
        duration: float,
    ) -> None:
        """Suppress alerts matching (kind, entity) for ``duration``
        seconds — the maintenance-window primitive.  ``kind="*"``
        matches every kind; ``entity=None`` matches every entity of the
        kind."""
        self._silences[(kind, entity)] = self.clock.now() + duration

    def clear_silence(self, *, kind: str = "*", entity: Any = None) -> None:
        self._silences.pop((kind, entity), None)

    def _silenced(self, kind: str, entity: Any) -> bool:
        now = self.clock.now()
        expired = [key for key, until in self._silences.items() if until <= now]
        for key in expired:
            del self._silences[key]
        for silence_kind, silence_entity in self._silences:
            if silence_kind not in ("*", kind):
                continue
            if silence_entity is not None and silence_entity != entity:
                continue
            return True
        return False

    # -- raising -----------------------------------------------------------------

    def raise_alert(
        self,
        kind: str,
        event: Event,
        *,
        entity: Any = None,
        severity: str = "warning",
        message: str = "",
        category: str | None = None,
        required_capabilities: tuple[str, ...] = (),
        location: tuple[float, float] | None = None,
    ) -> Alert | None:
        """Create (or fold into a recent duplicate) an alert.

        Returns the new alert, or None when deduplicated into an
        existing one.
        """
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        now = self.clock.now()
        if self._silenced(kind, entity):
            self.stats["silenced"] += 1
            return None
        dedup_key = (kind, entity)
        recent_id = self._recent.get(dedup_key)
        if recent_id is not None:
            recent = self._alerts.get(recent_id)
            if (
                recent is not None
                and not recent.acknowledged
                and now - recent.created_at < self.cooldown
            ):
                recent.repeats += 1
                self.stats["deduplicated"] += 1
                return None
        alert = Alert(
            alert_id=next(self._ids),
            kind=kind,
            entity=entity,
            severity=severity,
            event=event,
            created_at=now,
            message=message or f"{kind} on {entity!r}",
        )
        self._alerts[alert.alert_id] = alert
        self._recent[dedup_key] = alert.alert_id
        self.stats["raised"] += 1
        self._dispatch(alert, category, required_capabilities, location)
        return alert

    def _dispatch(
        self,
        alert: Alert,
        category: str | None,
        required_capabilities: tuple[str, ...],
        location: tuple[float, float] | None,
    ) -> None:
        chosen: list[Responder] = []
        if self.responders is not None and category is not None:
            try:
                chosen = self.responders.select(
                    category=category,
                    required_capabilities=required_capabilities,
                    location=location,
                    now=self.clock.now(),
                )
                alert.responders.extend(r.name for r in chosen)
            except ResponderError:
                self.stats["dispatch_failures"] += 1
        for channel in self._channels:
            channel(alert, chosen)

    # -- lifecycle -----------------------------------------------------------------

    def acknowledge(self, alert_id: int, *, by: str = "") -> None:
        alert = self._alerts[alert_id]
        alert.acknowledged = True
        alert.acknowledged_by = by or None

    def open_alerts(self) -> list[Alert]:
        return [a for a in self._alerts.values() if not a.acknowledged]

    def get(self, alert_id: int) -> Alert:
        return self._alerts[alert_id]

    def check_escalations(self) -> list[Alert]:
        """Escalate unacknowledged alerts past their deadline; returns
        the alerts that escalated (re-dispatched on each escalation)."""
        now = self.clock.now()
        escalated: list[Alert] = []
        for alert in self._alerts.values():
            if alert.acknowledged:
                continue
            deadline = alert.created_at + self.escalation_timeout * (
                alert.escalations + 1
            )
            if now >= deadline and alert.severity_index() < len(SEVERITIES) - 1:
                alert.severity = SEVERITIES[alert.severity_index() + 1]
                alert.escalations += 1
                self.stats["escalated"] += 1
                escalated.append(alert)
                for channel in self._channels:
                    channel(alert, [])
        return escalated
