"""Responder selection: authorized, available, and able (§2.2.e.iii–iv).

ChemSecure: "any threat has to be known to the people who are
*authorized* and *able* to respond most efficiently."  SensorNet:
"deliver to first responders who are authorized, available and able to
respond most efficiently."

A :class:`Responder` declares authorizations (clearance categories),
capabilities (what they can handle), an availability schedule, and a
location.  :meth:`ResponderRegistry.select` filters on all three axes
and ranks the survivors by distance — "most efficiently".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ResponderError


@dataclass
class Responder:
    """One person/system that can act on alerts."""

    name: str
    authorizations: set[str] = field(default_factory=set)
    capabilities: set[str] = field(default_factory=set)
    location: tuple[float, float] = (0.0, 0.0)
    available: bool = True
    # Optional on-duty windows as (start, end) times; empty = always.
    duty_windows: list[tuple[float, float]] = field(default_factory=list)
    dispatched: int = 0

    def is_available(self, now: float | None = None) -> bool:
        if not self.available:
            return False
        if not self.duty_windows or now is None:
            return self.available
        return any(start <= now <= end for start, end in self.duty_windows)

    def is_authorized(self, category: str) -> bool:
        return category in self.authorizations or "*" in self.authorizations

    def is_able(self, required: Iterable[str]) -> bool:
        return set(required) <= self.capabilities

    def distance_to(self, location: tuple[float, float]) -> float:
        return math.dist(self.location, location)


class ResponderRegistry:
    """Find the right responders for an incident."""

    def __init__(self) -> None:
        self._responders: dict[str, Responder] = {}

    def register(self, responder: Responder) -> Responder:
        if responder.name in self._responders:
            raise ResponderError(
                f"responder {responder.name!r} already registered"
            )
        self._responders[responder.name] = responder
        return responder

    def get(self, name: str) -> Responder:
        try:
            return self._responders[name]
        except KeyError:
            raise ResponderError(f"responder {name!r} is not registered") from None

    def __len__(self) -> int:
        return len(self._responders)

    def set_available(self, name: str, available: bool) -> None:
        self.get(name).available = available

    def select(
        self,
        *,
        category: str,
        required_capabilities: Iterable[str] = (),
        location: tuple[float, float] | None = None,
        now: float | None = None,
        count: int = 1,
    ) -> list[Responder]:
        """The ``count`` best responders: authorized ∧ available ∧ able,
        nearest first.  Raises :class:`ResponderError` when none
        qualify — an unroutable critical alert is an operational
        failure, not a silent drop."""
        required = list(required_capabilities)
        qualified = [
            responder
            for responder in self._responders.values()
            if responder.is_authorized(category)
            and responder.is_available(now)
            and responder.is_able(required)
        ]
        if not qualified:
            raise ResponderError(
                f"no responder is authorized, available, and able for "
                f"category {category!r} with capabilities {required}"
            )
        if location is not None:
            qualified.sort(key=lambda responder: responder.distance_to(location))
        else:
            qualified.sort(key=lambda responder: responder.dispatched)
        chosen = qualified[:count]
        for responder in chosen:
            responder.dispatched += 1
        return chosen
