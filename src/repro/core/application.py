"""The assembled event-driven application.

:class:`EventDrivenApplication` wires the tutorial's architecture into
one object:

    capture (triggers / journal / queries)
        → input stream
        → rule engine (critical-condition rules)
        → continuous queries (windows, patterns, aggregates)
        → expectation models (deviation detection)
        → VIRT filters (per recipient)
        → alert manager → responders

Each stage remains independently usable; the application only provides
construction convenience and a single :meth:`pump` that advances every
poll-driven component (journal mining, query capture, ack timeouts,
escalations).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.capture.base import CaptureSource
from repro.capture.journal_capture import JournalCapture
from repro.capture.query_capture import QueryCapture
from repro.capture.trigger_capture import TriggerCapture
from repro.core.alerting import Alert, AlertManager
from repro.core.deviation import DeviationDetector, ModelFactory, UpdatePolicy
from repro.core.responders import ResponderRegistry
from repro.core.virt import RecipientProfile, VirtFilter, VirtScorer
from repro.cq.query import CQEngine, ContinuousQuery
from repro.cq.stream import Stream
from repro.db.database import Database
from repro.errors import ReproError
from repro.events import Event
from repro.queues.broker import QueueBroker
from repro.rules.engine import RuleEngine
from repro.rules.rule import Rule


class EventDrivenApplication:
    """One sense-and-respond application over one database."""

    def __init__(self, db: Database, *, name: str = "app") -> None:
        self.db = db
        self.name = name
        self.clock = db.clock
        self.input = Stream(f"{name}.input")
        self.rules = RuleEngine()
        self.cq = CQEngine()
        self.queues = QueueBroker(db, name=f"{name}-queues")
        self.responders = ResponderRegistry()
        self.alerts = AlertManager(self.clock, responders=self.responders)
        self.virt_scorer = VirtScorer(self.clock)
        self.virt_filters: dict[str, VirtFilter] = {}
        self.detectors: dict[str, DeviationDetector] = {}
        self._captures: list[CaptureSource] = []
        self.input.subscribe(self._on_event)

    # -- capture ------------------------------------------------------------

    def capture_table(
        self, table: str, *, method: str = "trigger", **kwargs: Any
    ) -> CaptureSource:
        """Start capturing changes of ``table`` into the input stream.

        ``method`` is ``"trigger"`` (synchronous) or ``"journal"``
        (asynchronous; advanced by :meth:`pump`).
        """
        if method == "trigger":
            source: CaptureSource = TriggerCapture(
                self.db, [table], name=f"{self.name}_cap_{table}", **kwargs
            )
        elif method == "journal":
            source = JournalCapture(
                self.db, [table], name=f"{self.name}_jcap_{table}", **kwargs
            )
        else:
            raise ReproError(f"unknown capture method {method!r}")
        source.subscribe(self.input.push)
        self._captures.append(source)
        return source

    def capture_query(
        self,
        query: str,
        *,
        name: str,
        key_columns: list[str] | None = None,
        push: bool = False,
    ) -> CaptureSource:
        """Monitor a query's result set.

        ``push=False`` polls on :meth:`pump` (query-diff capture);
        ``push=True`` registers a CQN-style notification that fires at
        commit time with no polling at all.
        """
        if push:
            from repro.capture.notification_capture import (
                QueryNotificationCapture,
            )

            source: CaptureSource = QueryNotificationCapture(
                self.db, query, name=name, key_columns=key_columns
            )
        else:
            source = QueryCapture(
                self.db, query, name=name, key_columns=key_columns
            )
        source.subscribe(self.input.push)
        self._captures.append(source)
        return source

    # -- rules & queries ---------------------------------------------------------

    def add_rule(self, rule: Rule) -> Rule:
        return self.rules.add_rule(rule)

    def add_query(self, query: ContinuousQuery) -> ContinuousQuery:
        self.cq.register(query)
        self.input.subscribe(query.push)
        return query

    # -- models -------------------------------------------------------------------

    def monitor(
        self,
        name: str,
        *,
        field: str,
        model_factory: ModelFactory,
        threshold: float,
        key_field: str | None = None,
        update_policy: UpdatePolicy = UpdatePolicy.ALWAYS,
        severity: str = "warning",
        category: str | None = None,
    ) -> DeviationDetector:
        """Watch a numeric field against an expectation model; raise an
        alert (routed through VIRT filters) on deviation."""
        detector = DeviationDetector(
            self.input,
            name=name,
            field=field,
            model_factory=model_factory,
            threshold=threshold,
            key_field=key_field,
            update_policy=update_policy,
        )
        self.detectors[name] = detector

        def on_deviation(event: Event) -> None:
            self.alerts.raise_alert(
                kind=name,
                event=event,
                entity=event.get("key"),
                severity=severity,
                category=category,
                message=(
                    f"{name}: {event.get('field')}={event.get('observed')} "
                    f"expected≈{event.get('expected')}"
                ),
            )
            for virt_filter in self.virt_filters.values():
                virt_filter.offer(event)

        detector.subscribe(on_deviation)
        return detector

    # -- recipients -----------------------------------------------------------------

    def add_recipient(
        self,
        profile: RecipientProfile,
        *,
        threshold: float,
        deliver: Callable[[Event, float], None] | None = None,
    ) -> VirtFilter:
        """Register a recipient behind a VIRT filter."""
        virt_filter = VirtFilter(
            self.virt_scorer, profile, threshold=threshold, deliver=deliver
        )
        self.virt_filters[profile.name] = virt_filter
        return virt_filter

    # -- runtime -----------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self.rules.evaluate(event)

    def process(self, event: Event) -> None:
        """Inject an application-level event directly."""
        self.input.push(event)

    def pump(self) -> int:
        """Advance every poll-driven component once; returns events
        captured by polling sources."""
        captured = 0
        for source in self._captures:
            poll = getattr(source, "poll", None)
            if poll is not None:
                captured += len(poll())
        self.alerts.check_escalations()
        return captured

    def statistics(self) -> dict[str, Any]:
        return {
            "rules": dict(self.rules.stats),
            "queries": self.cq.statistics(),
            "alerts": dict(self.alerts.stats),
            "detectors": {
                name: dict(d.stats) for name, d in self.detectors.items()
            },
            "virt": {
                name: dict(f.stats) for name, f in self.virt_filters.items()
            },
            "captures": {
                source.name: source.events_captured for source in self._captures
            },
        }
