"""Exception hierarchy for the repro event-processing platform.

Every subsystem raises subclasses of :class:`ReproError`, so callers can
catch one base class at an integration boundary while tests can assert
on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Database substrate
# --------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for errors raised by the embedded database."""


class SchemaError(DatabaseError):
    """Invalid schema definition or reference to a missing object."""


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class ConstraintViolation(DatabaseError):
    """A NOT NULL, UNIQUE, PRIMARY KEY, or CHECK constraint failed."""

    def __init__(self, constraint: str, detail: str = "") -> None:
        self.constraint = constraint
        self.detail = detail
        message = f"constraint violated: {constraint}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} at position {position}"
        super().__init__(message)


class ExpressionError(DatabaseError):
    """An expression referenced an unknown name or misused an operator."""


class TransactionError(DatabaseError):
    """Invalid transaction state transition (e.g. commit after rollback)."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class RecoveryError(DatabaseError):
    """The write-ahead log could not be replayed consistently."""


class WALError(DatabaseError):
    """A journal record could not be serialized faithfully.

    Raised at append time (not at flush time) when a persistent WAL is
    asked to journal a value JSON cannot round-trip, so the offending
    transaction fails cleanly instead of poisoning crash recovery."""


class TriggerError(DatabaseError):
    """A trigger definition is invalid or its action raised."""


# --------------------------------------------------------------------------
# Messaging / queues
# --------------------------------------------------------------------------


class QueueError(ReproError):
    """Base class for message-queue errors."""


class QueueNotFoundError(QueueError):
    """The named queue does not exist in the broker."""


class MessageExpiredError(QueueError):
    """The message passed its expiration before it could be consumed."""


class AccessDeniedError(QueueError):
    """The principal lacks the privilege required for the operation."""


class PropagationError(QueueError):
    """Forwarding a message to another staging area or service failed."""


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


class RuleError(ReproError):
    """Base class for rule-engine errors."""


class RuleNotFoundError(RuleError):
    """The referenced rule id is not registered."""


class RuleConditionError(RuleError):
    """A rule condition failed to parse or evaluate."""


# --------------------------------------------------------------------------
# Continuous queries / CEP
# --------------------------------------------------------------------------


class StreamError(ReproError):
    """Base class for continuous-query errors."""


class WindowError(StreamError):
    """Invalid window specification (e.g. slide larger than range)."""


class PatternError(StreamError):
    """Invalid event-pattern specification."""


# --------------------------------------------------------------------------
# Pub/sub and distribution
# --------------------------------------------------------------------------


class PubSubError(ReproError):
    """Base class for publish/subscribe errors."""


class TopicNotFoundError(PubSubError):
    """The named topic does not exist."""


class RoutingError(PubSubError):
    """No route exists between the source and destination staging areas."""


class DeliveryError(PubSubError):
    """A message could not be delivered within the retry policy."""


# --------------------------------------------------------------------------
# Core (sense-and-respond)
# --------------------------------------------------------------------------


class ModelError(ReproError):
    """An expectation model was misconfigured or fed invalid data."""


class ResponderError(ReproError):
    """No responder satisfying the authorization/availability/capability
    requirements could be found."""
