"""Exception hierarchy for the repro event-processing platform.

Every subsystem raises subclasses of :class:`ReproError`, so callers can
catch one base class at an integration boundary while tests can assert
on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FaultInjectedError(ReproError, IOError):
    """An armed failpoint fired (see :mod:`repro.faults`).

    Subclasses ``IOError`` so code under test that handles real I/O
    failures handles injected ones identically; subclasses
    :class:`ReproError` so harnesses can catch exactly the injected
    faults and treat them as a simulated process death.
    """

    def __init__(self, message: str, *, failpoint: str | None = None) -> None:
        self.failpoint = failpoint
        if failpoint:
            message = f"{message} (failpoint {failpoint!r})"
        super().__init__(message)


class TornTailWarning(RuntimeWarning):
    """A WAL scan found (and truncated) invalid bytes after the last
    durable commit — the expected aftermath of a crash mid-append."""


# --------------------------------------------------------------------------
# Database substrate
# --------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for errors raised by the embedded database."""


class JournalContext:
    """Mixin giving journal errors uniform structured context.

    ``lsn``/``op``/``table``/``rowid``/``byte_offset`` are attributes
    the fault suite asserts on directly, instead of parsing ad-hoc
    message strings; whichever are known are also appended to the
    message for humans.
    """

    def __init__(
        self,
        message: str,
        *,
        lsn: int | None = None,
        op: str | None = None,
        table: str | None = None,
        rowid: int | None = None,
        byte_offset: int | None = None,
    ) -> None:
        self.lsn = lsn
        self.op = op
        self.table = table
        self.rowid = rowid
        self.byte_offset = byte_offset
        context = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("lsn", lsn),
                ("op", op),
                ("table", table),
                ("rowid", rowid),
                ("byte_offset", byte_offset),
            )
            if value is not None
        )
        if context:
            message = f"{message} [{context}]"
        super().__init__(message)


class SchemaError(DatabaseError):
    """Invalid schema definition or reference to a missing object."""


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class ConstraintViolation(DatabaseError):
    """A NOT NULL, UNIQUE, PRIMARY KEY, or CHECK constraint failed."""

    def __init__(self, constraint: str, detail: str = "") -> None:
        self.constraint = constraint
        self.detail = detail
        message = f"constraint violated: {constraint}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} at position {position}"
        super().__init__(message)


class ExpressionError(DatabaseError):
    """An expression referenced an unknown name or misused an operator."""


class TransactionError(DatabaseError):
    """Invalid transaction state transition (e.g. commit after rollback)."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class RecoveryError(JournalContext, DatabaseError):
    """The write-ahead log could not be replayed consistently.

    Carries structured context (``lsn``, ``op``, ``table``, ``rowid``,
    ``byte_offset``) identifying *which* record failed — a
    mid-log checksum failure names the LSN it expected at the corrupt
    frame's byte offset."""


class WALError(JournalContext, DatabaseError):
    """A journal record could not be serialized faithfully.

    Raised at append time (not at flush time) when a persistent WAL is
    asked to journal a value JSON cannot round-trip, so the offending
    transaction fails cleanly instead of poisoning crash recovery.
    Carries the same structured context as :class:`RecoveryError`."""


class TriggerError(DatabaseError):
    """A trigger definition is invalid or its action raised."""


# --------------------------------------------------------------------------
# Messaging / queues
# --------------------------------------------------------------------------


class QueueError(ReproError):
    """Base class for message-queue errors."""


class QueueNotFoundError(QueueError):
    """The named queue does not exist in the broker."""


class MessageExpiredError(QueueError):
    """The message passed its expiration before it could be consumed."""


class AccessDeniedError(QueueError):
    """The principal lacks the privilege required for the operation."""


class PropagationError(QueueError):
    """Forwarding a message to another staging area or service failed."""


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


class RuleError(ReproError):
    """Base class for rule-engine errors."""


class RuleNotFoundError(RuleError):
    """The referenced rule id is not registered."""


class RuleConditionError(RuleError):
    """A rule condition failed to parse or evaluate."""


# --------------------------------------------------------------------------
# Continuous queries / CEP
# --------------------------------------------------------------------------


class StreamError(ReproError):
    """Base class for continuous-query errors."""


class WindowError(StreamError):
    """Invalid window specification (e.g. slide larger than range)."""


class PatternError(StreamError):
    """Invalid event-pattern specification."""


# --------------------------------------------------------------------------
# Pub/sub and distribution
# --------------------------------------------------------------------------


class PubSubError(ReproError):
    """Base class for publish/subscribe errors."""


class TopicNotFoundError(PubSubError):
    """The named topic does not exist."""


class RoutingError(PubSubError):
    """No route exists between the source and destination staging areas."""


class DeliveryError(PubSubError):
    """A message could not be delivered within the retry policy."""


# --------------------------------------------------------------------------
# Core (sense-and-respond)
# --------------------------------------------------------------------------


class ModelError(ReproError):
    """An expectation model was misconfigured or fed invalid data."""


class ResponderError(ReproError):
    """No responder satisfying the authorization/availability/capability
    requirements could be found."""


# --------------------------------------------------------------------------
# Sharded multi-process execution (repro.shard)
# --------------------------------------------------------------------------


class ShardError(ReproError):
    """Base class for errors raised by the sharded execution layer."""


class ShardProtocolError(ShardError):
    """A malformed or oversized frame on the coordinator/worker wire."""


class ShardWorkerError(ShardError):
    """A worker reported an error executing a routed operation.

    ``kind`` names the worker-side exception class; when it maps to a
    known :class:`ReproError` subclass the coordinator re-raises that
    class instead, so callers of the sharded brokers catch exactly the
    errors the single-process brokers raise."""

    def __init__(self, message: str, *, kind: str = "", shard: int | None = None):
        super().__init__(message)
        self.kind = kind
        self.shard = shard


class ShardWorkerDied(ShardError):
    """The worker process closed its channel or timed out mid-request."""

    def __init__(self, message: str, *, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class ShardUnavailable(ShardError):
    """No live primary currently serves the shard.

    Raised by the sharded brokers (fail-fast write policy, or a read
    that could not be served even stale) while the supervisor is still
    restarting or promoting.  ``retry_after`` is the caller's hint, in
    seconds, for when the supervisor next attempts recovery — back off
    at least that long before retrying."""

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        retry_after: float | None = None,
    ):
        if retry_after is not None:
            message = f"{message} (retry after {retry_after:.2f}s)"
        super().__init__(message)
        self.shard = shard
        self.retry_after = retry_after
