"""Financial-services workloads (§2.2.e.i).

* :class:`MarketDataGenerator` — per-symbol tick streams (geometric
  random walk) with injected *spike-and-collapse* episodes: the price
  jumps sharply and then falls below its pre-spike level within
  seconds.  These are the "opportunities and threats" CEP patterns are
  meant to catch (the EXP-6 pattern workload).
* :class:`OrderFlowGenerator` — an order stream with injected bursts of
  anomalously large orders from a single account (surveillance
  workload: the EXP-9 VIRT sweep uses its labels).
"""

from __future__ import annotations

import math
import random

from repro.events import Event
from repro.workloads.generators import LabeledStream, pick_episode_times, poisson_times


class MarketDataGenerator:
    """Seeded tick streams with labelled spike episodes."""

    def __init__(
        self,
        *,
        symbols: tuple[str, ...] = ("IBM", "ORCL", "MSFT", "HPQ"),
        tick_rate: float = 10.0,
        volatility: float = 0.0005,
        episode_count: int = 5,
        spike_magnitude: float = 0.08,
        seed: int = 7,
    ) -> None:
        self.symbols = symbols
        self.tick_rate = tick_rate
        self.volatility = volatility
        self.episode_count = episode_count
        self.spike_magnitude = spike_magnitude
        self.seed = seed

    def generate(self, duration: float) -> LabeledStream:
        rng = random.Random(self.seed)
        stream = LabeledStream()
        episodes = pick_episode_times(
            rng, duration * 0.9, self.episode_count, min_gap=30.0,
            start=duration * 0.1,
        )
        stream.episodes = episodes
        # Each episode strikes one symbol.
        episode_symbol = {t: rng.choice(self.symbols) for t in episodes}

        for symbol in self.symbols:
            price = rng.uniform(20.0, 200.0)
            for timestamp in poisson_times(rng, self.tick_rate, duration):
                price *= math.exp(rng.gauss(0.0, self.volatility))
                tick_price = price
                critical = False
                for episode_time in episodes:
                    if episode_symbol[episode_time] != symbol:
                        continue
                    offset = timestamp - episode_time
                    if 0 <= offset < 5.0:  # spike phase
                        tick_price = price * (1 + self.spike_magnitude)
                        critical = True
                    elif 5.0 <= offset < 10.0:  # collapse phase
                        tick_price = price * (1 - self.spike_magnitude)
                        critical = True
                event = Event(
                    "tick",
                    timestamp,
                    {
                        "symbol": symbol,
                        "price": round(tick_price, 4),
                        "qty": rng.randrange(1, 500),
                    },
                    source="market",
                )
                stream.events.append(event)
                if critical:
                    stream.critical_event_ids.add(event.event_id)
        return stream.sorted_by_time()


class OrderFlowGenerator:
    """Order events with labelled bursts of outsized orders."""

    def __init__(
        self,
        *,
        accounts: int = 50,
        symbols: tuple[str, ...] = ("IBM", "ORCL", "MSFT", "HPQ"),
        order_rate: float = 20.0,
        normal_qty: tuple[int, int] = (1, 200),
        burst_qty: tuple[int, int] = (5_000, 20_000),
        episode_count: int = 4,
        burst_length: int = 8,
        seed: int = 11,
    ) -> None:
        self.accounts = accounts
        self.symbols = symbols
        self.order_rate = order_rate
        self.normal_qty = normal_qty
        self.burst_qty = burst_qty
        self.episode_count = episode_count
        self.burst_length = burst_length
        self.seed = seed

    def generate(self, duration: float) -> LabeledStream:
        rng = random.Random(self.seed)
        stream = LabeledStream()
        episodes = pick_episode_times(
            rng, duration * 0.9, self.episode_count, min_gap=20.0,
            start=duration * 0.1,
        )
        stream.episodes = episodes

        for timestamp in poisson_times(rng, self.order_rate, duration):
            event = Event(
                "orders.insert",
                timestamp,
                {
                    "account": f"acct{rng.randrange(self.accounts)}",
                    "symbol": rng.choice(self.symbols),
                    "qty": rng.randrange(*self.normal_qty),
                    "price": round(rng.uniform(10, 300), 2),
                    "side": rng.choice(["buy", "sell"]),
                },
                source="orders",
            )
            stream.events.append(event)

        # Bursts: one rogue account fires burst_length huge orders.
        for episode_time in episodes:
            account = f"acct{rng.randrange(self.accounts)}"
            symbol = rng.choice(self.symbols)
            for i in range(self.burst_length):
                event = Event(
                    "orders.insert",
                    episode_time + i * 0.5,
                    {
                        "account": account,
                        "symbol": symbol,
                        "qty": rng.randrange(*self.burst_qty),
                        "price": round(rng.uniform(10, 300), 2),
                        "side": "buy",
                    },
                    source="orders",
                )
                stream.events.append(event)
                stream.critical_event_ids.add(event.event_id)
        return stream.sorted_by_time()
