"""ChemSecure workload (§2.2.e.iii): hazardous-material tracking.

Containers of hazardous material move between zones, producing RFID
read events with a temperature measurement.  Two labelled violation
kinds are injected:

* **zone violations** — a container appears in a zone its material
  class is not authorized for;
* **temperature excursions** — a container's temperature climbs past
  its material's safe ceiling over several reads.

The authorization matrix (material class → allowed zones) is emitted as
reference data so examples can load it into a database table and catch
zone violations with a stream-table join.
"""

from __future__ import annotations

import random
from typing import Any

from repro.events import Event
from repro.workloads.generators import LabeledStream, pick_episode_times

MATERIAL_CLASSES = ("flammable", "corrosive", "radioactive", "biohazard")
ZONES = ("dock", "storage_a", "storage_b", "lab", "disposal", "transit")

# Which zones each material class may legally occupy.
AUTHORIZED_ZONES: dict[str, tuple[str, ...]] = {
    "flammable": ("dock", "storage_a", "transit"),
    "corrosive": ("dock", "storage_b", "transit"),
    "radioactive": ("dock", "lab", "disposal", "transit"),
    "biohazard": ("dock", "lab", "transit"),
}

SAFE_TEMPERATURE: dict[str, float] = {
    "flammable": 40.0,
    "corrosive": 60.0,
    "radioactive": 50.0,
    "biohazard": 30.0,
}


class HazmatGenerator:
    """Seeded RFID reads with labelled zone/temperature violations."""

    def __init__(
        self,
        *,
        containers: int = 40,
        read_interval: float = 10.0,
        violation_count: int = 4,
        seed: int = 31,
    ) -> None:
        self.containers = containers
        self.read_interval = read_interval
        self.violation_count = violation_count
        self.seed = seed

    def reference_rows(self) -> list[dict[str, Any]]:
        """Authorization matrix as rows for a reference table."""
        rows = []
        for material, zones in AUTHORIZED_ZONES.items():
            for zone in zones:
                rows.append({"material": material, "zone": zone})
        return rows

    def container_material(self, container_id: int) -> str:
        return MATERIAL_CLASSES[container_id % len(MATERIAL_CLASSES)]

    def generate(self, duration: float) -> LabeledStream:
        rng = random.Random(self.seed)
        stream = LabeledStream()
        episodes = pick_episode_times(
            rng, duration * 0.9, self.violation_count, min_gap=60.0,
            start=duration * 0.1,
        )
        stream.episodes = episodes
        # Alternate violation kinds across episodes.
        plans: dict[float, tuple[str, int]] = {}
        for index, episode_time in enumerate(episodes):
            kind = "zone" if index % 2 == 0 else "temperature"
            plans[episode_time] = (kind, rng.randrange(self.containers))

        zone_of = {
            container: rng.choice(
                AUTHORIZED_ZONES[self.container_material(container)]
            )
            for container in range(self.containers)
        }

        ticks = int(duration / self.read_interval)
        for tick in range(ticks):
            timestamp = tick * self.read_interval
            for container in range(self.containers):
                material = self.container_material(container)
                # Containers occasionally move between authorized zones.
                if rng.random() < 0.05:
                    zone_of[container] = rng.choice(AUTHORIZED_ZONES[material])
                zone = zone_of[container]
                temperature = rng.gauss(
                    SAFE_TEMPERATURE[material] - 15.0, 3.0
                )
                critical = False
                for episode_time, (kind, culprit) in plans.items():
                    age = timestamp - episode_time
                    if container != culprit or not 0 <= age <= 60.0:
                        continue
                    if kind == "zone":
                        forbidden = [
                            z
                            for z in ZONES
                            if z not in AUTHORIZED_ZONES[material]
                        ]
                        zone = forbidden[container % len(forbidden)]
                        critical = True
                    else:
                        temperature = SAFE_TEMPERATURE[material] + 5.0 + age / 6.0
                        critical = True
                event = Event(
                    "rfid.read",
                    timestamp,
                    {
                        "container": f"c{container}",
                        "material": material,
                        "zone": zone,
                        "temperature": round(temperature, 2),
                    },
                    source="chemsecure",
                )
                stream.events.append(event)
                if critical:
                    stream.critical_event_ids.add(event.event_id)
        return stream
