"""Shared generator machinery: labelled streams and arrival processes."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.events import Event


@dataclass
class LabeledStream:
    """A finite event stream with ground-truth critical episodes.

    ``episodes`` holds the start time of each injected critical
    condition; ``critical_event_ids`` the ids of events that belong to
    an episode — together they support both episode-level
    (:class:`repro.core.metrics.EpisodeTracker`) and event-level
    (:class:`repro.core.metrics.ConfusionTracker`) error accounting.
    """

    events: list[Event] = field(default_factory=list)
    episodes: list[float] = field(default_factory=list)
    critical_event_ids: set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def is_critical(self, event: Event) -> bool:
        return event.event_id in self.critical_event_ids

    def sorted_by_time(self) -> "LabeledStream":
        """Return a copy with events in timestamp order (stable)."""
        ordered = sorted(self.events, key=lambda event: event.timestamp)
        return LabeledStream(
            events=ordered,
            episodes=list(self.episodes),
            critical_event_ids=set(self.critical_event_ids),
        )


def poisson_times(
    rng: random.Random, rate: float, duration: float, start: float = 0.0
) -> list[float]:
    """Arrival times of a Poisson process of ``rate`` events/second."""
    if rate <= 0:
        return []
    times: list[float] = []
    now = start
    while True:
        now += rng.expovariate(rate)
        if now >= start + duration:
            return times
        times.append(now)


def pick_episode_times(
    rng: random.Random,
    end: float,
    count: int,
    *,
    min_gap: float,
    start: float = 0.0,
) -> list[float]:
    """``count`` episode start times in ``[start, end]`` separated by at
    least ``min_gap`` (best effort: gives up after 100 tries each)."""
    if end <= start:
        return []
    times: list[float] = []
    attempts = 0
    while len(times) < count and attempts < count * 100:
        attempts += 1
        candidate = rng.uniform(start, end)
        if all(abs(candidate - existing) >= min_gap for existing in times):
            times.append(candidate)
    times.sort()
    return times
