"""Shared generator machinery: labelled streams and arrival processes."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.events import Event


@dataclass
class LabeledStream:
    """A finite event stream with ground-truth critical episodes.

    ``episodes`` holds the start time of each injected critical
    condition; ``critical_event_ids`` the ids of events that belong to
    an episode — together they support both episode-level
    (:class:`repro.core.metrics.EpisodeTracker`) and event-level
    (:class:`repro.core.metrics.ConfusionTracker`) error accounting.
    """

    events: list[Event] = field(default_factory=list)
    episodes: list[float] = field(default_factory=list)
    critical_event_ids: set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def is_critical(self, event: Event) -> bool:
        return event.event_id in self.critical_event_ids

    def sorted_by_time(self) -> "LabeledStream":
        """Return a copy with events in timestamp order (stable)."""
        ordered = sorted(self.events, key=lambda event: event.timestamp)
        return LabeledStream(
            events=ordered,
            episodes=list(self.episodes),
            critical_event_ids=set(self.critical_event_ids),
        )

    def disordered(
        self,
        rng: random.Random,
        *,
        max_delay: float,
        disorder_rate: float = 1.0,
    ) -> "LabeledStream":
        """Return a copy in *arrival* order under random network delay.

        Each event is delayed by Uniform(0, ``max_delay``) seconds with
        probability ``disorder_rate`` (0 delay otherwise) and the copy
        is ordered by arrival time, so an event can trail others up to
        ``max_delay`` seconds ahead of it in event time — the bounded
        disorder an ``allowed_lateness >= max_delay`` window absorbs
        losslessly.  Timestamps are untouched (application time is the
        ground truth; only delivery order changes).
        """
        return LabeledStream(
            events=disorder_by_delay(
                rng,
                self.events,
                max_delay=max_delay,
                disorder_rate=disorder_rate,
            ),
            episodes=list(self.episodes),
            critical_event_ids=set(self.critical_event_ids),
        )


def disorder_by_delay(
    rng: random.Random,
    events: list[Event],
    *,
    max_delay: float,
    disorder_rate: float = 1.0,
) -> list[Event]:
    """Shuffle ``events`` into arrival order under random per-event
    delivery delay bounded by ``max_delay`` (see
    :meth:`LabeledStream.disordered`).  The sort is stable, so events
    sharing an arrival time keep their original relative order."""
    if max_delay < 0:
        raise ValueError("max_delay must be >= 0")
    if not 0.0 <= disorder_rate <= 1.0:
        raise ValueError("disorder_rate must be in [0, 1]")
    arrivals = []
    for index, event in enumerate(events):
        delay = 0.0
        if max_delay > 0 and (
            disorder_rate >= 1.0 or rng.random() < disorder_rate
        ):
            delay = rng.uniform(0.0, max_delay)
        arrivals.append((event.timestamp + delay, index, event))
    arrivals.sort(key=lambda item: (item[0], item[1]))
    return [event for _arrival, _index, event in arrivals]


def poisson_times(
    rng: random.Random, rate: float, duration: float, start: float = 0.0
) -> list[float]:
    """Arrival times of a Poisson process of ``rate`` events/second."""
    if rate <= 0:
        return []
    times: list[float] = []
    now = start
    while True:
        now += rng.expovariate(rate)
        if now >= start + duration:
            return times
        times.append(now)


def pick_episode_times(
    rng: random.Random,
    end: float,
    count: int,
    *,
    min_gap: float,
    start: float = 0.0,
) -> list[float]:
    """``count`` episode start times in ``[start, end]`` separated by at
    least ``min_gap`` (best effort: gives up after 100 tries each)."""
    if end <= start:
        return []
    times: list[float] = []
    attempts = 0
    while len(times) < count and attempts < count * 100:
        attempts += 1
        candidate = rng.uniform(start, end)
        if all(abs(candidate - existing) >= min_gap for existing in times):
            times.append(candidate)
    times.sort()
    return times
