"""Synthetic workloads for the tutorial's use cases (§2.1.c, §2.2.e).

Production traces are proprietary; these generators produce seeded,
labelled streams with the statistical features the tutorial's argument
relies on — high-volume background noise with rare, ground-truth-
labelled critical episodes — so detection quality (false positives /
false negatives) is measurable.
"""

from repro.workloads.finance import MarketDataGenerator, OrderFlowGenerator
from repro.workloads.generators import (
    LabeledStream,
    disorder_by_delay,
    poisson_times,
)
from repro.workloads.hazmat import HazmatGenerator
from repro.workloads.sensors import (
    LateSensorGenerator,
    MultiRegionFeed,
    SensorGridGenerator,
)
from repro.workloads.utility import UtilityUsageGenerator

__all__ = [
    "LabeledStream",
    "poisson_times",
    "disorder_by_delay",
    "MarketDataGenerator",
    "OrderFlowGenerator",
    "SensorGridGenerator",
    "LateSensorGenerator",
    "MultiRegionFeed",
    "HazmatGenerator",
    "UtilityUsageGenerator",
]
