"""Utility workload (§2.2.e.ii): meter usage with seasonal pattern.

Meters report usage every ``report_interval`` seconds.  Baseline demand
follows a daily sinusoid (low at night, peak in the evening) plus
noise; labelled anomaly episodes multiply one meter's usage (leak or
theft) for a sustained period.  The seasonal structure is what
:class:`repro.core.model.SeasonalProfileModel` exists to learn: a
night-time spike that is *below* the daily mean is still a deviation.
"""

from __future__ import annotations

import math
import random

from repro.events import Event
from repro.workloads.generators import LabeledStream, pick_episode_times

DAY = 86_400.0


class UtilityUsageGenerator:
    """Seeded meter readings with labelled usage anomalies."""

    def __init__(
        self,
        *,
        meters: int = 20,
        report_interval: float = 900.0,  # 15 minutes
        base_usage: float = 1.0,
        daily_swing: float = 0.8,
        noise: float = 0.05,
        anomaly_count: int = 3,
        anomaly_factor: float = 3.0,
        anomaly_duration: float = 4 * 3600.0,
        seed: int = 47,
    ) -> None:
        self.meters = meters
        self.report_interval = report_interval
        self.base_usage = base_usage
        self.daily_swing = daily_swing
        self.noise = noise
        self.anomaly_count = anomaly_count
        self.anomaly_factor = anomaly_factor
        self.anomaly_duration = anomaly_duration
        self.seed = seed

    def expected_usage(self, meter: int, timestamp: float) -> float:
        """Deterministic seasonal demand for one meter at one time."""
        phase = (timestamp % DAY) / DAY
        # Evening peak around phase 0.8, trough around 0.3.
        seasonal = 1.0 + self.daily_swing * math.sin(
            2 * math.pi * (phase - 0.55)
        )
        per_meter = 1.0 + (meter % 5) * 0.2
        return self.base_usage * seasonal * per_meter

    def generate(self, duration: float) -> LabeledStream:
        rng = random.Random(self.seed)
        stream = LabeledStream()
        episodes = pick_episode_times(
            rng,
            duration - self.anomaly_duration,
            self.anomaly_count,
            min_gap=self.anomaly_duration,
            start=duration * 0.3,  # after models have warmed up
        )
        stream.episodes = episodes
        culprit = {t: rng.randrange(self.meters) for t in episodes}

        ticks = int(duration / self.report_interval)
        for tick in range(ticks):
            timestamp = tick * self.report_interval
            for meter in range(self.meters):
                usage = self.expected_usage(meter, timestamp) * (
                    1.0 + rng.gauss(0.0, self.noise)
                )
                critical = False
                for episode_time in episodes:
                    age = timestamp - episode_time
                    if culprit[episode_time] == meter and 0 <= age <= self.anomaly_duration:
                        usage *= self.anomaly_factor
                        critical = True
                event = Event(
                    "meter.reading",
                    timestamp,
                    {
                        "meter_id": f"m{meter}",
                        "usage": round(usage, 4),
                    },
                    source="utility",
                )
                stream.events.append(event)
                if critical:
                    stream.critical_event_ids.add(event.event_id)
        return stream
