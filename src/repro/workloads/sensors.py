"""SensorNet workload (§2.2.e.iv): a sensor grid with plume episodes.

A rows×cols grid of sensors reports readings at a fixed cadence.  A
*plume* episode elevates readings at an origin cell and spreads to
neighbours with distance- and time-decaying intensity — the classic
"capture a wide variety of data and deliver to first responders"
scenario.  Ground truth is the set of plume start times; events during
a plume at affected cells are labelled critical.

Two disorder variants feed the out-of-order machinery:
:class:`LateSensorGenerator` delays a seeded fraction of readings in
transit (bounded network lateness), and :class:`MultiRegionFeed`
interleaves per-region feeds whose clocks are skewed and whose uplinks
batch — the realistic shape of "events arrive out of order across
collection sites".
"""

from __future__ import annotations

import math
import random

from repro.events import Event
from repro.workloads.generators import (
    LabeledStream,
    disorder_by_delay,
    pick_episode_times,
)


class SensorGridGenerator:
    """Seeded readings from a grid of sensors with injected plumes."""

    def __init__(
        self,
        *,
        rows: int = 6,
        cols: int = 6,
        report_interval: float = 5.0,
        baseline: float = 10.0,
        noise: float = 1.0,
        plume_count: int = 3,
        plume_intensity: float = 40.0,
        plume_duration: float = 60.0,
        plume_radius: float = 2.0,
        seed: int = 23,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.report_interval = report_interval
        self.baseline = baseline
        self.noise = noise
        self.plume_count = plume_count
        self.plume_intensity = plume_intensity
        self.plume_duration = plume_duration
        self.plume_radius = plume_radius
        self.seed = seed

    def sensor_id(self, row: int, col: int) -> str:
        return f"s{row}_{col}"

    def generate(self, duration: float) -> LabeledStream:
        rng = random.Random(self.seed)
        stream = LabeledStream()
        episodes = pick_episode_times(
            rng,
            duration - self.plume_duration,
            self.plume_count,
            min_gap=self.plume_duration * 1.5,
            start=duration * 0.1,
        )
        stream.episodes = episodes
        origins = {
            t: (rng.randrange(self.rows), rng.randrange(self.cols))
            for t in episodes
        }

        ticks = int(duration / self.report_interval)
        for tick in range(ticks):
            timestamp = tick * self.report_interval
            for row in range(self.rows):
                for col in range(self.cols):
                    reading = self.baseline + rng.gauss(0.0, self.noise)
                    critical = False
                    for episode_time, (o_row, o_col) in origins.items():
                        age = timestamp - episode_time
                        if not 0 <= age <= self.plume_duration:
                            continue
                        distance = math.hypot(row - o_row, col - o_col)
                        # The plume front expands at 1 cell / 10 s.
                        reach = min(self.plume_radius, age / 10.0 + 0.5)
                        if distance <= reach:
                            decay = math.exp(-age / self.plume_duration)
                            falloff = math.exp(-distance)
                            reading += self.plume_intensity * decay * falloff
                            critical = True
                    event = Event(
                        "sensor.reading",
                        timestamp,
                        {
                            "sensor_id": self.sensor_id(row, col),
                            "row": row,
                            "col": col,
                            "reading": round(reading, 3),
                        },
                        source="sensornet",
                    )
                    stream.events.append(event)
                    if critical:
                        stream.critical_event_ids.add(event.event_id)
        return stream


class LateSensorGenerator(SensorGridGenerator):
    """Sensor grid whose readings arrive late: a seeded fraction of
    events is delayed in transit by up to ``max_delay`` seconds, so the
    stream is delivered in arrival order while timestamps keep event
    time.  ``allowed_lateness >= max_delay`` recovers in-order results
    exactly; smaller bounds drop the tail (counted in
    ``cq.late_dropped``) — the EXP-14 sweep axis."""

    def __init__(
        self,
        *,
        max_delay: float = 20.0,
        disorder_rate: float = 0.3,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.max_delay = max_delay
        self.disorder_rate = disorder_rate

    def generate(self, duration: float) -> LabeledStream:
        stream = super().generate(duration)
        # Independent RNG stream so delays don't perturb the readings.
        rng = random.Random(self.seed + 7919)
        return stream.disordered(
            rng,
            max_delay=self.max_delay,
            disorder_rate=self.disorder_rate,
        )


class MultiRegionFeed:
    """Clock-skewed multi-region sensor feed.

    Each region runs its own :class:`SensorGridGenerator` with a
    constant clock offset (skewed wall clocks at the collection sites)
    and uplinks readings in periodic batches.  The merged feed is
    ordered by *uplink arrival*, so region B's batch of older events
    routinely lands after region A's newer ones — cross-source disorder
    bounded by ``max(|skew|) + uplink_interval``, which is therefore
    the lateness bound that loses nothing.  Payloads carry ``region``
    for keyed windows.
    """

    def __init__(
        self,
        *,
        regions: int = 3,
        clock_skews: list[float] | None = None,
        uplink_interval: float = 15.0,
        rows: int = 3,
        cols: int = 3,
        report_interval: float = 5.0,
        seed: int = 23,
    ) -> None:
        if regions <= 0:
            raise ValueError("regions must be positive")
        if clock_skews is None:
            # Deterministic alternating skews: 0, +4, -8, +12, ...
            clock_skews = [
                0.0 if i == 0 else (4.0 * i) * (1 if i % 2 else -1)
                for i in range(regions)
            ]
        if len(clock_skews) != regions:
            raise ValueError("need one clock skew per region")
        if uplink_interval <= 0:
            raise ValueError("uplink_interval must be positive")
        self.regions = regions
        self.clock_skews = list(clock_skews)
        self.uplink_interval = uplink_interval
        self.rows = rows
        self.cols = cols
        self.report_interval = report_interval
        self.seed = seed

    def disorder_bound(self) -> float:
        """Lateness bound under which no event is lost."""
        return max(abs(skew) for skew in self.clock_skews) + self.uplink_interval

    def generate(self, duration: float) -> LabeledStream:
        merged = LabeledStream()
        uplinks: list[tuple[float, int, int, Event]] = []
        for region in range(self.regions):
            generator = SensorGridGenerator(
                rows=self.rows,
                cols=self.cols,
                report_interval=self.report_interval,
                plume_count=1,
                seed=self.seed + region * 101,
            )
            regional = generator.generate(duration)
            merged.episodes.extend(regional.episodes)
            skew = self.clock_skews[region]
            for order, event in enumerate(regional.events):
                # The site's skewed clock stamps the reading; the true
                # (unskewed) occurrence time is gone, exactly as in a
                # real deployment without clock sync.
                stamped = Event(
                    event.event_type,
                    event.timestamp + skew,
                    {**event.payload, "region": f"r{region}"},
                    source=f"sensornet:r{region}",
                )
                if event.event_id in regional.critical_event_ids:
                    merged.critical_event_ids.add(stamped.event_id)
                # Uplink batching: the reading leaves the site at the
                # next uplink tick after its (skewed) capture time.
                uplink_tick = (
                    math.floor(stamped.timestamp / self.uplink_interval) + 1
                ) * self.uplink_interval
                uplinks.append((uplink_tick, region, order, stamped))
        # Arrival order: by uplink time, regions interleaved, each
        # region's batch internally in capture order.
        uplinks.sort(key=lambda item: (item[0], item[1], item[2]))
        merged.events = [event for _tick, _region, _order, event in uplinks]
        merged.episodes.sort()
        return merged
