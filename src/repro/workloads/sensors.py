"""SensorNet workload (§2.2.e.iv): a sensor grid with plume episodes.

A rows×cols grid of sensors reports readings at a fixed cadence.  A
*plume* episode elevates readings at an origin cell and spreads to
neighbours with distance- and time-decaying intensity — the classic
"capture a wide variety of data and deliver to first responders"
scenario.  Ground truth is the set of plume start times; events during
a plume at affected cells are labelled critical.
"""

from __future__ import annotations

import math
import random

from repro.events import Event
from repro.workloads.generators import LabeledStream, pick_episode_times


class SensorGridGenerator:
    """Seeded readings from a grid of sensors with injected plumes."""

    def __init__(
        self,
        *,
        rows: int = 6,
        cols: int = 6,
        report_interval: float = 5.0,
        baseline: float = 10.0,
        noise: float = 1.0,
        plume_count: int = 3,
        plume_intensity: float = 40.0,
        plume_duration: float = 60.0,
        plume_radius: float = 2.0,
        seed: int = 23,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.report_interval = report_interval
        self.baseline = baseline
        self.noise = noise
        self.plume_count = plume_count
        self.plume_intensity = plume_intensity
        self.plume_duration = plume_duration
        self.plume_radius = plume_radius
        self.seed = seed

    def sensor_id(self, row: int, col: int) -> str:
        return f"s{row}_{col}"

    def generate(self, duration: float) -> LabeledStream:
        rng = random.Random(self.seed)
        stream = LabeledStream()
        episodes = pick_episode_times(
            rng,
            duration - self.plume_duration,
            self.plume_count,
            min_gap=self.plume_duration * 1.5,
            start=duration * 0.1,
        )
        stream.episodes = episodes
        origins = {
            t: (rng.randrange(self.rows), rng.randrange(self.cols))
            for t in episodes
        }

        ticks = int(duration / self.report_interval)
        for tick in range(ticks):
            timestamp = tick * self.report_interval
            for row in range(self.rows):
                for col in range(self.cols):
                    reading = self.baseline + rng.gauss(0.0, self.noise)
                    critical = False
                    for episode_time, (o_row, o_col) in origins.items():
                        age = timestamp - episode_time
                        if not 0 <= age <= self.plume_duration:
                            continue
                        distance = math.hypot(row - o_row, col - o_col)
                        # The plume front expands at 1 cell / 10 s.
                        reach = min(self.plume_radius, age / 10.0 + 0.5)
                        if distance <= reach:
                            decay = math.exp(-age / self.plume_duration)
                            falloff = math.exp(-distance)
                            reading += self.plume_intensity * decay * falloff
                            critical = True
                    event = Event(
                        "sensor.reading",
                        timestamp,
                        {
                            "sensor_id": self.sensor_id(row, col),
                            "row": row,
                            "col": col,
                            "reading": round(reading, 3),
                        },
                        source="sensornet",
                    )
                    stream.events.append(event)
                    if critical:
                        stream.critical_event_ids.add(event.event_id)
        return stream
