"""Rules as data: definition and database persistence (§2.2.c.i.2).

A rule's condition is an ordinary expression AST — the same engine that
evaluates SQL WHERE clauses.  Because expressions serialize to JSON
(:func:`repro.db.expr.expression_to_dict`), rules are stored in a
normal database table (``_rules``), which is the tutorial's point:
databases that support *expressions as data* can subsume and extend
publish/subscribe middleware.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.db.database import Database
from repro.db.expr import (
    Expression,
    compile_predicate,
    expression_from_dict,
    expression_to_dict,
)
from repro.db.schema import Column
from repro.db.sql.parser import parse_expression
from repro.db.types import BOOL, INT, TEXT
from repro.errors import RuleError, RuleNotFoundError

RULES_TABLE = "_rules"

RuleAction = Callable[["Rule", Mapping[str, Any]], Any]


@dataclass
class Rule:
    """One rule: condition + action + routing metadata.

    Attributes:
        rule_id: unique name.
        condition: boolean expression over event/row attributes; given
            as text it is parsed with the SQL expression grammar.
        action: callable invoked as ``action(rule, context)`` when the
            condition holds.  Resolved by name from an
            :class:`repro.rules.actions.ActionRegistry` when rules are
            loaded from the database.
        event_types: optional event-type patterns (exact, ``*``, or
            dotted prefix ``orders.*``); None matches every type.
        priority: higher-priority rules run their actions first.
    """

    rule_id: str
    condition: Expression
    action: RuleAction | None = None
    action_name: str | None = None
    event_types: tuple[str, ...] | None = None
    priority: int = 0
    enabled: bool = True
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse_expression(self.condition)
        if self.event_types is not None:
            self.event_types = tuple(self.event_types)
        self._compiled_condition: Callable[[Mapping[str, Any]], bool] | None = None

    @property
    def compiled_condition(self) -> Callable[[Mapping[str, Any]], bool]:
        """The condition lowered to a single closure (compiled lazily,
        once per rule — engines force it at registration time)."""
        if self._compiled_condition is None:
            self._compiled_condition = compile_predicate(self.condition)
        return self._compiled_condition

    def recompile(self) -> Callable[[Mapping[str, Any]], bool]:
        """Re-lower the condition after it was replaced.

        Assign a *new* expression tree to ``condition`` (per-node memos
        make mutating a compiled tree in place unsupported), then call
        this; engines do so automatically on rule churn.
        """
        self._compiled_condition = None
        return self.compiled_condition

    @classmethod
    def from_text(
        cls,
        rule_id: str,
        condition: str,
        *,
        action: RuleAction | None = None,
        event_types: tuple[str, ...] | None = None,
        priority: int = 0,
        **metadata: Any,
    ) -> "Rule":
        """Build a rule from condition text (the common path)."""
        return cls(
            rule_id=rule_id,
            condition=parse_expression(condition),
            action=action,
            event_types=event_types,
            priority=priority,
            metadata=metadata,
        )

    def matches_event_type(self, event_type: str) -> bool:
        if self.event_types is None:
            return True
        for pattern in self.event_types:
            if pattern == "*" or pattern == event_type:
                return True
            if pattern.endswith(".*") and event_type.startswith(pattern[:-1]):
                return True
        return False


class RuleStore:
    """Persists rules in the ``_rules`` catalog table.

    The store keeps no in-memory rule state — it is purely the
    (de)serialization boundary.  Actions are stored by name and rebound
    through a registry at load time, since callables cannot live in a
    table.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.catalog.has_table(RULES_TABLE):
            db.create_table(
                RULES_TABLE,
                [
                    Column("rule_id", TEXT, primary_key=True),
                    Column("condition", TEXT, nullable=False),
                    Column("action_name", TEXT),
                    Column("event_types", TEXT),
                    Column("priority", INT, nullable=False, default=0),
                    Column("enabled", BOOL, nullable=False, default=True),
                    Column("metadata", TEXT),
                ],
            )

    def save(self, rule: Rule) -> None:
        """Insert or replace the stored form of ``rule``."""
        table = self.db.catalog.table(RULES_TABLE)
        row = {
            "rule_id": rule.rule_id,
            "condition": json.dumps(expression_to_dict(rule.condition)),
            "action_name": rule.action_name,
            "event_types": (
                json.dumps(list(rule.event_types))
                if rule.event_types is not None
                else None
            ),
            "priority": rule.priority,
            "enabled": rule.enabled,
            "metadata": json.dumps(rule.metadata) if rule.metadata else None,
        }
        existing = table.lookup_rowids("rule_id", rule.rule_id)
        if existing:
            self.db.update_row(RULES_TABLE, existing[0], row)
        else:
            self.db.insert_row(RULES_TABLE, row)

    def delete(self, rule_id: str) -> None:
        table = self.db.catalog.table(RULES_TABLE)
        existing = table.lookup_rowids("rule_id", rule_id)
        if not existing:
            raise RuleNotFoundError(f"rule {rule_id!r} is not stored")
        self.db.delete_row(RULES_TABLE, existing[0])

    def load_all(
        self, actions: Mapping[str, RuleAction] | None = None
    ) -> list[Rule]:
        """Rebuild every stored rule, binding actions by name.

        A stored action name missing from ``actions`` raises
        :class:`RuleError` — silently dropping a rule's action would
        turn a monitoring rule into a no-op.
        """
        rules: list[Rule] = []
        for row in self.db.query(f"SELECT * FROM {RULES_TABLE}"):
            action = None
            if row["action_name"] is not None:
                if actions is None or row["action_name"] not in actions:
                    raise RuleError(
                        f"rule {row['rule_id']!r} references unregistered "
                        f"action {row['action_name']!r}"
                    )
                action = actions[row["action_name"]]
            rules.append(
                Rule(
                    rule_id=row["rule_id"],
                    condition=expression_from_dict(
                        json.loads(row["condition"])
                    ),
                    action=action,
                    action_name=row["action_name"],
                    event_types=(
                        tuple(json.loads(row["event_types"]))
                        if row["event_types"]
                        else None
                    ),
                    priority=row["priority"],
                    enabled=row["enabled"],
                    metadata=(
                        json.loads(row["metadata"]) if row["metadata"] else {}
                    ),
                )
            )
        return rules
