"""Publish/subscribe and subscribe-to-publish (§2.2.c.i.1).

The tutorial notes that databases naturally support both directions:

* **publish/subscribe** — consumers register interest (a condition);
  published events are delivered to every subscriber whose condition
  matches.  The matching is exactly the rule engine, so large
  subscriber populations scale through the predicate index.
* **subscribe-to-publish** — the producer asks *who would be
  interested* before creating content
  (:meth:`PubSubRules.interested_consumers`).  When nobody subscribes,
  expensive message construction can be skipped entirely — the
  ``suppressed`` statistic counts those saved publications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import PubSubError
from repro.events import Event
from repro.rules.engine import RuleEngine, event_context
from repro.rules.rule import Rule

Deliver = Callable[[Event], None]


@dataclass
class Subscription:
    """One consumer's registered interest."""

    subscriber: str
    condition: str
    deliver: Deliver
    event_types: tuple[str, ...] | None = None
    delivered: int = field(default=0)


class PubSubRules:
    """Content-based pub/sub built directly on the rule engine."""

    def __init__(self, *, mode: str = "indexed") -> None:
        self._engine = RuleEngine(mode=mode)
        self._subscriptions: dict[str, Subscription] = {}
        self.stats = {"published": 0, "delivered": 0, "suppressed": 0}

    def __len__(self) -> int:
        return len(self._subscriptions)

    def subscribe(
        self,
        subscriber: str,
        condition: str,
        deliver: Deliver,
        *,
        event_types: tuple[str, ...] | None = None,
    ) -> Subscription:
        """Register interest; ``condition`` uses the SQL expression
        grammar over event attributes (``'TRUE'`` for everything)."""
        if subscriber in self._subscriptions:
            raise PubSubError(f"subscriber {subscriber!r} already registered")
        subscription = Subscription(
            subscriber=subscriber,
            condition=condition,
            deliver=deliver,
            event_types=event_types,
        )
        self._subscriptions[subscriber] = subscription
        rule = Rule.from_text(
            subscriber, condition, event_types=event_types
        )
        rule.metadata["subscription"] = subscription
        self._engine.add_rule(rule)
        return subscription

    def unsubscribe(self, subscriber: str) -> None:
        if subscriber not in self._subscriptions:
            raise PubSubError(f"subscriber {subscriber!r} is not registered")
        del self._subscriptions[subscriber]
        self._engine.remove_rule(subscriber)

    def interested_consumers(self, event: Event) -> list[str]:
        """Subscribe-to-publish: who would receive this event?

        Evaluates conditions without delivering, so producers can probe
        cheaply before building expensive content.
        """
        matches = self._engine.evaluate(event, run_actions=False)
        return [match.rule.rule_id for match in matches]

    def publish(self, event: Event) -> int:
        """Deliver to every interested subscriber; returns the count."""
        self.stats["published"] += 1
        matches = self._engine.evaluate(event, run_actions=False)
        for match in matches:
            subscription = self._subscriptions[match.rule.rule_id]
            subscription.deliver(event)
            subscription.delivered += 1
        self.stats["delivered"] += len(matches)
        return len(matches)

    def publish_lazy(
        self,
        event_type: str,
        timestamp: float,
        probe: Mapping[str, Any],
        build: Callable[[], Event],
    ) -> int:
        """Subscribe-to-publish flow: probe with cheap attributes, build
        the full event only if someone is interested.

        ``probe`` carries the attributes conditions filter on; ``build``
        constructs the complete (expensive) event.  Returns deliveries.
        """
        probe_event = Event(
            event_type=event_type, timestamp=timestamp, payload=probe
        )
        interested = self.interested_consumers(probe_event)
        if not interested:
            self.stats["suppressed"] += 1
            return 0
        return self.publish(build())
