"""The rule engine: evaluate external and internal data (§2.2.c.ii–iii).

*External* data: events presented to the rules service — the engine
identifies interested consumers (:meth:`RuleEngine.evaluate`).

*Internal* data: rows already in the database or messages in queues —
:meth:`RuleEngine.evaluate_table` and :meth:`evaluate_queue` run the
same rule set over stored data, "significantly optimized" by sharing
one parse of each condition and the predicate index across all rows.

Evaluation modes (the EXP-4 ablation):

* ``indexed`` (default) — candidate generation through the
  :class:`PredicateIndex`, then full evaluation of candidates only.
* ``naive`` — full evaluation of every registered rule, the baseline
  whose cost grows linearly with rule-set size.

``stats["conditions_evaluated"]`` counts full condition evaluations, so
benchmarks can report the work saved by indexing, independent of wall
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.db.database import Database
from repro.db.expr import evaluate_predicate
from repro.errors import RuleError, RuleNotFoundError
from repro.events import Event
from repro.obs.metrics import NULL_COUNTER
from repro.obs.trace import record_hop
from repro.queues.queue_table import QueueTable
from repro.rules.index import PredicateIndex
from repro.rules.rule import Rule


class EventContext(dict):
    """Row view of an event: absent attributes read as SQL NULL.

    Rule conditions routinely reference attributes that a given event
    type does not carry; in SQL terms those are NULL, and comparisons
    with them are UNKNOWN — the rule simply doesn't match.  A plain
    dict would raise instead.
    """

    def __contains__(self, key: object) -> bool:  # noqa: D105
        return True

    def __missing__(self, key: str) -> None:
        return None


def event_context(event: Event) -> EventContext:
    context = EventContext(event.payload)
    context.setdefault("event_type", event.event_type)
    context.setdefault("timestamp", event.timestamp)
    if not event.is_data:
        # Surface non-data kinds so rules can match (or skip) control
        # messages, and actions can stamp outgoing message headers.
        context.setdefault("kind", event.kind)
    if event.trace_id is not None:
        # Actions (e.g. EnqueueAction) read this to keep the outgoing
        # message on the originating event's trace.
        context.setdefault("trace_id", event.trace_id)
    return context


@dataclass
class RuleMatch:
    """One rule that matched one context."""

    rule: Rule
    context: Mapping[str, Any]
    event: Event | None = None


class RuleEngine:
    """Registered rules + evaluation strategies."""

    def __init__(
        self,
        *,
        mode: str = "indexed",
        compiled: bool = True,
        metrics: Any = None,
    ) -> None:
        if mode not in ("indexed", "naive"):
            raise RuleError(f"unknown evaluation mode {mode!r}")
        self.mode = mode
        # compiled=False keeps the interpreted AST walk — the EXP-4
        # ablation baseline; both paths evaluate identical conditions.
        self.compiled = bool(compiled)
        self._rules: dict[str, Rule] = {}
        self._index = PredicateIndex()
        # Type routing: exact-type buckets plus wildcard-pattern rules.
        self._by_exact_type: dict[str, set[str]] = {}
        self._wildcard_rules: set[str] = set()
        self.stats = {
            "events_evaluated": 0,
            "conditions_evaluated": 0,
            "matches": 0,
            "actions_run": 0,
        }
        # Share a pipeline registry (e.g. Database.obs) to surface rule
        # work in the same snapshot; without one, instruments are no-ops.
        if metrics is not None:
            self._m_events = metrics.counter("rules.events_evaluated")
            self._m_conditions = metrics.counter("rules.conditions_evaluated")
            self._m_matches = metrics.counter("rules.matches")
            self._m_actions = metrics.counter("rules.actions_run")
            self._m_compiles = metrics.counter("rules.compiles")
        else:
            self._m_events = NULL_COUNTER
            self._m_conditions = NULL_COUNTER
            self._m_matches = NULL_COUNTER
            self._m_actions = NULL_COUNTER
            self._m_compiles = NULL_COUNTER

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    # -- registration -------------------------------------------------------

    def add_rule(self, rule: Rule) -> Rule:
        if rule.rule_id in self._rules:
            raise RuleError(f"rule {rule.rule_id!r} already registered")
        self._rules[rule.rule_id] = rule
        self._index.add(rule)
        if self.compiled:
            # Compile at registration so evaluation never pays the
            # lowering cost; re-adding after churn recompiles because a
            # replaced rule carries a fresh condition tree.
            rule.recompile()
            self._m_compiles.inc()
        if rule.event_types is None:
            self._wildcard_rules.add(rule.rule_id)
        else:
            for pattern in rule.event_types:
                if "*" in pattern:
                    self._wildcard_rules.add(rule.rule_id)
                else:
                    self._by_exact_type.setdefault(pattern, set()).add(
                        rule.rule_id
                    )
        return rule

    def add(
        self,
        rule_id: str,
        condition: str,
        *,
        action: Any = None,
        event_types: tuple[str, ...] | None = None,
        priority: int = 0,
    ) -> Rule:
        """Shorthand: register a rule from condition text."""
        return self.add_rule(
            Rule.from_text(
                rule_id,
                condition,
                action=action,
                event_types=event_types,
                priority=priority,
            )
        )

    def remove_rule(self, rule_id: str) -> None:
        rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise RuleNotFoundError(f"rule {rule_id!r} is not registered")
        self._index.remove(rule_id)
        self._wildcard_rules.discard(rule_id)
        for bucket in self._by_exact_type.values():
            bucket.discard(rule_id)

    def set_enabled(self, rule_id: str, enabled: bool) -> None:
        try:
            self._rules[rule_id].enabled = enabled
        except KeyError:
            raise RuleNotFoundError(f"rule {rule_id!r} is not registered") from None

    def rules(self) -> list[Rule]:
        return sorted(self._rules.values(), key=lambda r: (-r.priority, r.rule_id))

    def load(self, store: "Any", actions: Mapping[str, Any] | None = None) -> int:
        """Register every rule persisted in a
        :class:`repro.rules.rule.RuleStore`, binding actions by name.
        Returns the number of rules loaded (already-registered ids are
        replaced, so load() after a crash is idempotent)."""
        loaded = 0
        for rule in store.load_all(actions):
            if rule.rule_id in self._rules:
                self.remove_rule(rule.rule_id)
            self.add_rule(rule)
            loaded += 1
        return loaded

    # -- evaluation ----------------------------------------------------------

    def evaluate_context(
        self,
        context: Mapping[str, Any],
        *,
        event: Event | None = None,
        run_actions: bool = True,
    ) -> list[RuleMatch]:
        """Evaluate all applicable rules against one context."""
        self.stats["events_evaluated"] += 1
        self._m_events.inc()
        event_type = event.event_type if event is not None else None
        # Type filtering probes the wildcard/exact-type sets per
        # candidate instead of materializing their union per event —
        # with mostly-wildcard rule sets that union is O(rules), paid
        # even when the index admits only a handful of candidates.
        wildcard = self._wildcard_rules
        exact: set[str] | tuple = (
            self._by_exact_type.get(event_type, ())
            if event_type is not None
            else ()
        )

        if self.mode == "indexed":
            candidates: Iterable[Rule] = self._index.candidates(context)
        else:
            candidates = self._rules.values()

        matches: list[RuleMatch] = []
        for rule in candidates:
            if not rule.enabled:
                continue
            if event_type is not None:
                if rule.rule_id not in wildcard and rule.rule_id not in exact:
                    continue
                if not rule.matches_event_type(event_type):
                    continue
            self.stats["conditions_evaluated"] += 1
            self._m_conditions.inc()
            if (
                rule.compiled_condition(context)
                if self.compiled
                else evaluate_predicate(rule.condition, context)
            ):
                matches.append(RuleMatch(rule=rule, context=context, event=event))
        matches.sort(key=lambda m: (-m.rule.priority, m.rule.rule_id))
        self.stats["matches"] += len(matches)
        if matches:
            self._m_matches.inc(len(matches))
            trace_id = event.trace_id if event is not None else None
            if trace_id is not None:
                ts = event.timestamp if event is not None else 0.0
                for match in matches:
                    record_hop(
                        trace_id, "rule.match", ts, rule=match.rule.rule_id
                    )
        if run_actions:
            for match in matches:
                if match.rule.action is not None:
                    match.rule.action(match.rule, context)
                    self.stats["actions_run"] += 1
                    self._m_actions.inc()
        return matches

    def evaluate(self, event: Event, *, run_actions: bool = True) -> list[RuleMatch]:
        """Evaluate an external event (§2.2.c.ii)."""
        return self.evaluate_context(
            event_context(event), event=event, run_actions=run_actions
        )

    def evaluate_table(
        self,
        db: Database,
        table_name: str,
        *,
        run_actions: bool = False,
    ) -> list[RuleMatch]:
        """Evaluate internal data: every row of a table (§2.2.c.iii)."""
        table = db.catalog.table(table_name)
        matches: list[RuleMatch] = []
        for _rowid, row in table.scan():
            matches.extend(
                self.evaluate_context(
                    EventContext(row), run_actions=run_actions
                )
            )
        return matches

    def evaluate_queue(
        self,
        queue: QueueTable,
        *,
        run_actions: bool = False,
    ) -> list[RuleMatch]:
        """Evaluate internal data: pending messages in a queue."""
        matches: list[RuleMatch] = []
        for message in queue.browse():
            matches.extend(
                self.evaluate_context(
                    EventContext(message.filter_context()),
                    run_actions=run_actions,
                )
            )
        return matches
