"""Standard rule actions and the name→action registry.

Actions are callables ``action(rule, context)``.  The registry maps the
names stored in the ``_rules`` table back to live callables when rules
are loaded (expressions persist as data; code rebinds by name).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import RuleError
from repro.events import KIND_DATA
from repro.queues.broker import QueueBroker
from repro.queues.message import KIND_HEADER
from repro.rules.rule import Rule, RuleAction


class ActionRegistry:
    """Named actions available to stored rules."""

    def __init__(self) -> None:
        self._actions: dict[str, RuleAction] = {}

    def register(self, name: str, action: RuleAction) -> RuleAction:
        if name in self._actions:
            raise RuleError(f"action {name!r} already registered")
        self._actions[name] = action
        return action

    def get(self, name: str) -> RuleAction:
        try:
            return self._actions[name]
        except KeyError:
            raise RuleError(f"action {name!r} is not registered") from None

    def as_mapping(self) -> Mapping[str, RuleAction]:
        return dict(self._actions)


class CollectAction:
    """Test/demo action: remembers every (rule_id, context) it saw."""

    def __init__(self) -> None:
        self.seen: list[tuple[str, dict[str, Any]]] = []

    def __call__(self, rule: Rule, context: Mapping[str, Any]) -> None:
        self.seen.append((rule.rule_id, dict(context)))

    def __len__(self) -> int:
        return len(self.seen)


class EnqueueAction:
    """Publish the matched context as a message to a queue.

    This is the §2.2.b.i.3 fast path in action: a rule match *is* an
    internally created message.
    """

    def __init__(
        self,
        broker: QueueBroker,
        queue_name: str,
        *,
        priority_key: str | None = None,
    ) -> None:
        self.broker = broker
        self.queue_name = queue_name
        self.priority_key = priority_key

    def __call__(self, rule: Rule, context: Mapping[str, Any]) -> None:
        from repro.queues.message import Message

        priority = 0
        if self.priority_key is not None:
            value = context.get(self.priority_key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                priority = int(value)
        payload = {
            "rule_id": rule.rule_id,
            "context": {
                key: value
                for key, value in dict(context).items()
                if _jsonable(value)
            },
        }
        # A rule-produced message stays on the originating event's
        # trace: event_context() surfaces the trace id, and the queue
        # will not re-stamp a message that already carries one.
        trace_id = context.get("trace_id")
        headers = {"trace_id": trace_id} if isinstance(trace_id, str) else {}
        # Non-data kinds (punctuation, retraction) ride through as a
        # kind header so queue consumers can route on Message.kind.
        kind = context.get("kind")
        if isinstance(kind, str) and kind != KIND_DATA:
            headers[KIND_HEADER] = kind
        self.broker.publish(
            self.queue_name,
            Message(payload=payload, priority=priority, headers=headers),
        )


def _jsonable(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str, list, dict))


class NotifyAction:
    """Deliver the match to in-process listeners (callbacks)."""

    def __init__(self, *listeners: Callable[[Rule, Mapping[str, Any]], None]) -> None:
        self.listeners = list(listeners)

    def add(self, listener: Callable[[Rule, Mapping[str, Any]], None]) -> None:
        self.listeners.append(listener)

    def __call__(self, rule: Rule, context: Mapping[str, Any]) -> None:
        for listener in self.listeners:
            listener(rule, context)
