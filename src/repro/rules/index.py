"""Predicate indexing for large rule sets (§2.2.c.iv.2.a).

The scalability claim the tutorial makes for database-hosted rules is
that evaluation cost should depend on the number of *matching* rules,
not the number of *registered* rules.  The classic technique (Oracle's
Expression Filter, pub/sub predicate indexes) is implemented here:

Every rule is **anchored** under one conjunct of its condition:

* ``col = const``  → an equality bucket keyed ``(col, const)``;
* ``col < / <= / > / >= / BETWEEN const`` → an interval in the
  per-column :class:`IntervalTree`;
* otherwise → the residual set, always evaluated.

Anchors are *necessary* conditions, so candidate generation is sound:
a rule whose anchor does not match cannot match overall (an absent
attribute is NULL, and NULL comparisons are UNKNOWN).  Candidates then
get full condition evaluation, so indexing is also complete — the
hypothesis test asserts indexed and naive evaluation agree exactly.

For churn (§2.2.c.iv.2.b) the interval trees absorb inserts/removals
into small side buffers and rebuild lazily once a buffer outgrows a
fraction of the tree — amortized O(log n) stabs with O(n) occasional
rebuilds, ablated in EXP-5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.db.expr import conjuncts, evaluate_predicate
from repro.errors import ExpressionError
from repro.rules.rule import Rule


def _fold(value: Any) -> Hashable:
    """Normalize for bucket keys (1 == 1.0 == True in SQL equality)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


@dataclass(frozen=True)
class Interval:
    """A one-column interval anchor. ``None`` bounds are unbounded."""

    low: float | None
    high: float | None
    low_inclusive: bool
    high_inclusive: bool
    rule_id: str

    def contains(self, value: float) -> bool:
        if self.low is not None:
            if value < self.low:
                return False
            if value == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if value > self.high:
                return False
            if value == self.high and not self.high_inclusive:
                return False
        return True

    def midpoint_key(self) -> float:
        if self.low is not None and self.high is not None:
            return (float(self.low) + float(self.high)) / 2.0
        if self.low is not None:
            return float(self.low)
        if self.high is not None:
            return float(self.high)
        return 0.0


class IntervalTree:
    """Centered interval tree with lazy rebuilds under churn.

    ``stab(v)`` returns intervals containing ``v`` in
    O(log n + matches) against the built tree plus a linear pass over
    the small insert buffer.  Removals are tombstones filtered at stab
    time; both buffers trigger a rebuild when they exceed
    ``rebuild_fraction`` of the tree size.
    """

    def __init__(self, *, rebuild_fraction: float = 0.25, eager: bool = False) -> None:
        """``eager=True`` rebuilds on every mutation (the ablation
        baseline for EXP-5's churn measurements)."""
        self._root: _Node | None = None
        self._built_count = 0
        self._pending_add: list[Interval] = []
        self._tombstones: set[Interval] = set()
        self.rebuild_fraction = rebuild_fraction
        self.eager = eager
        self.rebuilds = 0

    def __len__(self) -> int:
        return self._built_count + len(self._pending_add) - len(self._tombstones)

    def insert(self, interval: Interval) -> None:
        if interval in self._tombstones:
            self._tombstones.discard(interval)
            return
        self._pending_add.append(interval)
        self._maybe_rebuild()

    def remove(self, interval: Interval) -> None:
        if interval in self._pending_add:
            self._pending_add.remove(interval)
            return
        self._tombstones.add(interval)
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        buffered = len(self._pending_add) + len(self._tombstones)
        threshold = max(8, int(self._built_count * self.rebuild_fraction))
        if self.eager or buffered > threshold:
            self.rebuild()

    def rebuild(self) -> None:
        """Fold buffers into a freshly balanced tree."""
        intervals = [
            interval
            for interval in self._all_built()
            if interval not in self._tombstones
        ]
        intervals.extend(
            interval
            for interval in self._pending_add
            if interval not in self._tombstones
        )
        self._pending_add = []
        self._tombstones = set()
        self._root = _build(intervals)
        self._built_count = len(intervals)
        self.rebuilds += 1

    def _all_built(self) -> Iterator[Interval]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            yield from node.by_low
            stack.append(node.left)
            stack.append(node.right)

    def stab(self, value: Any) -> list[Interval]:
        """All live intervals containing ``value`` (non-numeric → none)."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return []
        value = float(value)
        matches: list[Interval] = []
        node = self._root
        while node is not None:
            if value < node.center:
                for interval in node.by_low:
                    if interval.low is not None and interval.low > value:
                        break
                    if interval.contains(value) and interval not in self._tombstones:
                        matches.append(interval)
                node = node.left
            elif value > node.center:
                for interval in node.by_high:
                    if interval.high is not None and interval.high < value:
                        break
                    if interval.contains(value) and interval not in self._tombstones:
                        matches.append(interval)
                node = node.right
            else:
                for interval in node.by_low:
                    if interval.contains(value) and interval not in self._tombstones:
                        matches.append(interval)
                node = None
        for interval in self._pending_add:
            if interval.contains(value) and interval not in self._tombstones:
                matches.append(interval)
        return matches


@dataclass
class _Node:
    center: float
    by_low: list[Interval]  # intervals overlapping center, sorted by low
    by_high: list[Interval]  # same intervals, sorted by high desc
    left: "_Node | None"
    right: "_Node | None"


_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _build(intervals: list[Interval]) -> _Node | None:
    if not intervals:
        return None
    centers = sorted(interval.midpoint_key() for interval in intervals)
    center = centers[len(centers) // 2]
    here: list[Interval] = []
    left: list[Interval] = []
    right: list[Interval] = []
    for interval in intervals:
        low = _NEG_INF if interval.low is None else float(interval.low)
        high = _POS_INF if interval.high is None else float(interval.high)
        if high < center:
            left.append(interval)
        elif low > center:
            right.append(interval)
        else:
            here.append(interval)
    by_low = sorted(
        here, key=lambda i: _NEG_INF if i.low is None else float(i.low)
    )
    by_high = sorted(
        here,
        key=lambda i: _POS_INF if i.high is None else float(i.high),
        reverse=True,
    )
    return _Node(
        center=center,
        by_low=by_low,
        by_high=by_high,
        left=_build(left),
        right=_build(right),
    )


class PredicateIndex:
    """Anchors rules for sub-linear candidate generation."""

    def __init__(self, *, eager_interval_rebuild: bool = False) -> None:
        self._equality: dict[tuple[str, Hashable], set[str]] = {}
        self._equality_columns: dict[str, int] = {}
        self._intervals: dict[str, IntervalTree] = {}
        self._interval_anchor: dict[str, tuple[str, Interval]] = {}
        self._equality_anchor: dict[str, tuple[str, Hashable]] = {}
        self._residual: set[str] = set()
        self._rules: dict[str, Rule] = {}
        self._eager = eager_interval_rebuild
        # Memoized referenced-column sets, captured once at add() time
        # (Expression.referenced_columns is itself memoized per node).
        self._rule_columns: dict[str, frozenset[str]] = {}
        # Constant conditions (no column references) are decided once at
        # registration: always-true rules are permanent candidates,
        # always-false/UNKNOWN rules are never candidates at all.
        self._always: set[str] = set()
        self._never: set[str] = set()

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def residual_count(self) -> int:
        """Rules with no indexable anchor (always fully evaluated)."""
        return len(self._residual)

    def referenced_columns(self, rule_id: str) -> frozenset[str]:
        """The column set captured for a registered rule."""
        return self._rule_columns.get(rule_id, frozenset())

    def add(self, rule: Rule) -> None:
        self._rules[rule.rule_id] = rule
        columns = rule.condition.referenced_columns()
        self._rule_columns[rule.rule_id] = columns
        if not columns:
            try:
                always = evaluate_predicate(rule.condition, {})
            except ExpressionError:
                # Evaluation errors must surface at evaluation time,
                # exactly as naive mode would raise them.
                self._residual.add(rule.rule_id)
                return
            (self._always if always else self._never).add(rule.rule_id)
            return
        anchor = self._choose_anchor(rule)
        if anchor is None:
            self._residual.add(rule.rule_id)
            return
        kind, column, detail = anchor
        if kind == "eq":
            key = (column, _fold(detail))
            self._equality.setdefault(key, set()).add(rule.rule_id)
            self._equality_anchor[rule.rule_id] = key
            self._equality_columns[column] = (
                self._equality_columns.get(column, 0) + 1
            )
        else:
            tree = self._intervals.get(column)
            if tree is None:
                tree = IntervalTree(eager=self._eager)
                self._intervals[column] = tree
            tree.insert(detail)
            self._interval_anchor[rule.rule_id] = (column, detail)

    def remove(self, rule_id: str) -> None:
        self._rules.pop(rule_id, None)
        self._rule_columns.pop(rule_id, None)
        if rule_id in self._always or rule_id in self._never:
            self._always.discard(rule_id)
            self._never.discard(rule_id)
            return
        if rule_id in self._residual:
            self._residual.discard(rule_id)
            return
        if rule_id in self._equality_anchor:
            key = self._equality_anchor.pop(rule_id)
            bucket = self._equality.get(key)
            if bucket is not None:
                bucket.discard(rule_id)
                if not bucket:
                    del self._equality[key]
            column = key[0]
            remaining = self._equality_columns.get(column, 0) - 1
            if remaining > 0:
                self._equality_columns[column] = remaining
            else:
                self._equality_columns.pop(column, None)
            return
        if rule_id in self._interval_anchor:
            column, interval = self._interval_anchor.pop(rule_id)
            tree = self._intervals.get(column)
            if tree is not None:
                tree.remove(interval)

    def _choose_anchor(
        self, rule: Rule
    ) -> tuple[str, str, Any] | None:
        """Pick the most selective necessary conjunct.

        Equality beats range (a point bucket is usually far more
        selective than an interval stab).  Non-numeric range constants
        cannot live in the float interval trees and fall through.
        """
        range_anchor: tuple[str, str, Any] | None = None
        for part in conjuncts(rule.condition):
            equality = part.as_equality()
            if equality is not None:
                column, value = equality
                return ("eq", column, value)
            bounds = part.as_range()
            if bounds is not None and range_anchor is None:
                column, low, high, low_inclusive, high_inclusive = bounds
                if _numeric_or_none(low) and _numeric_or_none(high):
                    interval = Interval(
                        low=None if low is None else float(low),
                        high=None if high is None else float(high),
                        low_inclusive=low_inclusive,
                        high_inclusive=high_inclusive,
                        rule_id=rule.rule_id,
                    )
                    range_anchor = ("range", column, interval)
        return range_anchor

    def candidates(self, context: Any) -> list[Rule]:
        """Rules whose anchor matches ``context`` plus the residual set.

        ``context`` is any mapping-like with ``.get``.
        """
        found: set[str] = set(self._residual)
        # Constant-true rules match regardless of context; constant-
        # false/UNKNOWN rules were excluded for good at add() time.
        found.update(self._always)
        # Equality: one probe per distinct anchored column, regardless
        # of how many (column, value) buckets exist.
        for column in self._equality_columns:
            value = context.get(column)
            if value is None:
                continue
            bucket = self._equality.get((column, _fold(value)))
            if bucket:
                found.update(bucket)
        for column, tree in self._intervals.items():
            value = context.get(column)
            if value is None:
                continue
            for interval in tree.stab(value):
                found.add(interval.rule_id)
        return [self._rules[rule_id] for rule_id in found if rule_id in self._rules]


def _numeric_or_none(value: Any) -> bool:
    return value is None or (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    )
