"""Rules technology for evaluating critical conditions (paper §2.2.c).

* :class:`Rule` — a stored condition ("expressions as data",
  §2.2.c.i.2) plus an action.
* :class:`PredicateIndex` — scalable evaluation of *large rule sets*
  (§2.2.c.iv.2.a): each rule is anchored under one of its conjuncts so
  an incoming event only fully evaluates rules whose anchor matches.
* :class:`RuleEngine` — evaluates external data (events presented to
  the service, §2.2.c.ii) and internal data (rows in tables, messages
  in queues, §2.2.c.iii).
* :class:`PubSubRules` — publish/subscribe and *subscribe-to-publish*
  (§2.2.c.i.1).
"""

from repro.rules.actions import ActionRegistry, CollectAction, EnqueueAction, NotifyAction
from repro.rules.engine import EventContext, RuleEngine, RuleMatch
from repro.rules.index import IntervalTree, PredicateIndex
from repro.rules.rule import Rule, RuleStore
from repro.rules.subscribe_to_publish import PubSubRules, Subscription

__all__ = [
    "Rule",
    "RuleStore",
    "RuleEngine",
    "RuleMatch",
    "EventContext",
    "PredicateIndex",
    "IntervalTree",
    "ActionRegistry",
    "CollectAction",
    "EnqueueAction",
    "NotifyAction",
    "PubSubRules",
    "Subscription",
]
